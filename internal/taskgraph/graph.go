// Package taskgraph models real-time applications as directed acyclic task
// graphs, following the task model of Jonsson & Shin (ICDCS 1997), Section 3.
//
// Nodes are either ordinary subtasks (computation, characterized by a
// worst-case execution time) or communication subtasks (the message passed
// along a precedence arc, characterized by a size in data items). Every
// precedence arc between two ordinary subtasks is materialized as a
// communication subtask so that deadline-distribution algorithms can assign
// release times and deadlines to messages as well, enabling deadline-based
// communication scheduling.
//
// A subtask with no predecessors is an input subtask; one with no successors
// is an output subtask. Input subtasks carry application release times and
// output subtasks carry end-to-end deadlines.
package taskgraph

import (
	"errors"
	"fmt"
	"strconv"
)

// NodeID identifies a node within a single Graph. IDs are dense indices
// assigned in creation order.
type NodeID int

// None is the invalid NodeID.
const None NodeID = -1

// Kind distinguishes ordinary subtasks from communication subtasks.
type Kind int

const (
	// KindSubtask is an ordinary computation subtask.
	KindSubtask Kind = iota + 1
	// KindMessage is a communication subtask materializing a precedence arc.
	KindMessage
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindSubtask:
		return "subtask"
	case KindMessage:
		return "message"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Node is one vertex of the task graph. For KindSubtask, Cost is the
// worst-case execution time c_i. For KindMessage, Size is the maximum
// message size m_ij in data items; the real communication cost is derived
// from Size by the platform once assignments are known.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string

	// Cost is the worst-case execution time of an ordinary subtask, in
	// abstract time units. Zero for messages.
	Cost float64

	// Size is the message size in data items. Zero for ordinary subtasks.
	Size float64

	// Release is the application release time. Meaningful only for input
	// subtasks (it is the earliest time the application may start).
	Release float64

	// EndToEnd is the end-to-end deadline D measured from the release of
	// the corresponding input subtasks. Meaningful only for output
	// subtasks; zero means "not set".
	EndToEnd float64

	// Pinned is the processor this subtask is strictly assigned to, or
	// Unpinned. Pinned subtasks model the paper's strict locality
	// constraints ("tasks constrained by demands of resources in their
	// physical proximity such as sensors and actuators"); the rest of the
	// graph is placed freely by the scheduler.
	Pinned int
}

// Unpinned marks a subtask without a strict locality constraint.
const Unpinned = -1

// Graph is an immutable-after-build directed acyclic task graph. Build one
// with a Builder. The zero value is an empty graph.
type Graph struct {
	nodes []Node
	succ  [][]NodeID
	pred  [][]NodeID

	topo []NodeID // cached topological order, set by finalize
}

// Errors returned by Builder.Finalize and graph validation.
var (
	ErrCycle        = errors.New("task graph contains a cycle")
	ErrEmpty        = errors.New("task graph has no subtasks")
	ErrBadND        = errors.New("node does not exist")
	ErrSelfArc      = errors.New("arc connects a subtask to itself")
	ErrDupArc       = errors.New("duplicate arc between subtasks")
	ErrNotSubtask   = errors.New("arc endpoint is not an ordinary subtask")
	ErrNegativeCost = errors.New("negative execution time or message size")
)

// Builder incrementally constructs a Graph. It is not safe for concurrent
// use. After Finalize succeeds the builder must not be reused.
type Builder struct {
	g    Graph
	arcs map[[2]NodeID]bool
	err  error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{arcs: make(map[[2]NodeID]bool)}
}

// AddSubtask adds an ordinary subtask with the given name and worst-case
// execution time, returning its NodeID. An empty name is replaced by a
// generated one. Errors are deferred to Finalize.
func (b *Builder) AddSubtask(name string, cost float64) NodeID {
	id := NodeID(len(b.g.nodes))
	if name == "" {
		name = "t" + strconv.Itoa(int(id))
	}
	if cost < 0 && b.err == nil {
		b.err = fmt.Errorf("subtask %q: cost %v: %w", name, cost, ErrNegativeCost)
	}
	b.g.nodes = append(b.g.nodes, Node{ID: id, Kind: KindSubtask, Name: name, Cost: cost, Pinned: Unpinned})
	b.g.succ = append(b.g.succ, nil)
	b.g.pred = append(b.g.pred, nil)
	return id
}

// Connect adds a precedence arc from subtask u to subtask v carrying a
// message of size data items, materialized as a communication subtask. It
// returns the NodeID of the communication subtask. Errors are deferred to
// Finalize.
func (b *Builder) Connect(u, v NodeID, size float64) NodeID {
	if b.err == nil {
		switch {
		case !b.valid(u) || !b.valid(v):
			b.err = fmt.Errorf("connect %d -> %d: %w", u, v, ErrBadND)
		case u == v:
			b.err = fmt.Errorf("connect %d -> %d: %w", u, v, ErrSelfArc)
		case b.g.nodes[u].Kind != KindSubtask || b.g.nodes[v].Kind != KindSubtask:
			b.err = fmt.Errorf("connect %d -> %d: %w", u, v, ErrNotSubtask)
		case b.arcs[[2]NodeID{u, v}]:
			b.err = fmt.Errorf("connect %d -> %d: %w", u, v, ErrDupArc)
		case size < 0:
			b.err = fmt.Errorf("connect %d -> %d: size %v: %w", u, v, size, ErrNegativeCost)
		}
	}
	if b.err != nil {
		return None
	}
	b.arcs[[2]NodeID{u, v}] = true

	m := NodeID(len(b.g.nodes))
	name := "m" + strconv.Itoa(int(u)) + "_" + strconv.Itoa(int(v))
	b.g.nodes = append(b.g.nodes, Node{ID: m, Kind: KindMessage, Name: name, Size: size, Pinned: Unpinned})
	b.g.succ = append(b.g.succ, nil)
	b.g.pred = append(b.g.pred, nil)

	b.g.succ[u] = append(b.g.succ[u], m)
	b.g.pred[m] = append(b.g.pred[m], u)
	b.g.succ[m] = append(b.g.succ[m], v)
	b.g.pred[v] = append(b.g.pred[v], m)
	return m
}

// SetRelease sets the application release time of subtask id. It is only
// meaningful for input subtasks; Finalize rejects it on non-inputs.
func (b *Builder) SetRelease(id NodeID, release float64) {
	if b.err == nil && !b.valid(id) {
		b.err = fmt.Errorf("set release %d: %w", id, ErrBadND)
		return
	}
	if b.err == nil {
		b.g.nodes[id].Release = release
	}
}

// Pin strictly assigns subtask id to the given processor (a strict
// locality constraint). Processor indices are validated by the scheduler
// against the concrete platform; Finalize only rejects negative values
// other than Unpinned and pins on communication subtasks.
func (b *Builder) Pin(id NodeID, proc int) {
	if b.err == nil && !b.valid(id) {
		b.err = fmt.Errorf("pin %d: %w", id, ErrBadND)
		return
	}
	if b.err != nil {
		return
	}
	switch {
	case b.g.nodes[id].Kind != KindSubtask:
		b.err = fmt.Errorf("pin %d: %w", id, ErrNotSubtask)
	case proc < 0:
		b.err = fmt.Errorf("pin %d to processor %d: negative processor", id, proc)
	default:
		b.g.nodes[id].Pinned = proc
	}
}

// SetEndToEnd sets the end-to-end deadline on output subtask id.
func (b *Builder) SetEndToEnd(id NodeID, deadline float64) {
	if b.err == nil && !b.valid(id) {
		b.err = fmt.Errorf("set end-to-end %d: %w", id, ErrBadND)
		return
	}
	if b.err == nil {
		b.g.nodes[id].EndToEnd = deadline
	}
}

func (b *Builder) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(b.g.nodes)
}

// Finalize validates the constructed graph and returns it. The returned
// Graph must not be modified.
func (b *Builder) Finalize() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &b.g
	if g.NumSubtasks() == 0 {
		return nil, ErrEmpty
	}
	topo, err := g.computeTopo()
	if err != nil {
		return nil, err
	}
	g.topo = topo
	for _, n := range g.nodes {
		if n.Kind == KindSubtask && n.Release != 0 && len(g.pred[n.ID]) != 0 {
			return nil, fmt.Errorf("subtask %q has a release time but is not an input subtask", n.Name)
		}
		if n.EndToEnd != 0 && len(g.succ[n.ID]) != 0 {
			return nil, fmt.Errorf("subtask %q has an end-to-end deadline but is not an output subtask", n.Name)
		}
	}
	return g, nil
}

// NumNodes returns the total node count (subtasks + messages).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumSubtasks returns the number of ordinary subtasks.
func (g *Graph) NumSubtasks() int {
	n := 0
	for i := range g.nodes {
		if g.nodes[i].Kind == KindSubtask {
			n++
		}
	}
	return n
}

// NumMessages returns the number of communication subtasks.
func (g *Graph) NumMessages() int { return len(g.nodes) - g.NumSubtasks() }

// Node returns the node with the given ID. The returned value is a copy.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Nodes returns a copy of all nodes in ID order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Succ returns the successor IDs of id. The returned slice must not be
// modified.
func (g *Graph) Succ(id NodeID) []NodeID { return g.succ[id] }

// Pred returns the predecessor IDs of id. The returned slice must not be
// modified.
func (g *Graph) Pred(id NodeID) []NodeID { return g.pred[id] }

// Inputs returns the IDs of all input subtasks (ordinary subtasks with no
// predecessors), in ID order.
func (g *Graph) Inputs() []NodeID {
	var out []NodeID
	for i := range g.nodes {
		if g.nodes[i].Kind == KindSubtask && len(g.pred[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Outputs returns the IDs of all output subtasks (ordinary subtasks with no
// successors), in ID order.
func (g *Graph) Outputs() []NodeID {
	var out []NodeID
	for i := range g.nodes {
		if g.nodes[i].Kind == KindSubtask && len(g.succ[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// TopoOrder returns a topological order over all nodes. The returned slice
// must not be modified.
func (g *Graph) TopoOrder() []NodeID { return g.topo }

// computeTopo runs Kahn's algorithm, returning ErrCycle on failure.
func (g *Graph) computeTopo() ([]NodeID, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.pred[i])
	}
	queue := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Clone returns a deep copy of the graph. The copy may be annotated (e.g.
// end-to-end deadlines overwritten) without affecting the original.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes: make([]Node, len(g.nodes)),
		succ:  make([][]NodeID, len(g.succ)),
		pred:  make([][]NodeID, len(g.pred)),
		topo:  make([]NodeID, len(g.topo)),
	}
	copy(c.nodes, g.nodes)
	copy(c.topo, g.topo)
	for i := range g.succ {
		c.succ[i] = append([]NodeID(nil), g.succ[i]...)
		c.pred[i] = append([]NodeID(nil), g.pred[i]...)
	}
	return c
}

// SetPinned overwrites the strict locality constraint of subtask id
// (Unpinned clears it). Intended for annotating clones, e.g. when applying
// a computed task assignment.
func (g *Graph) SetPinned(id NodeID, proc int) error {
	if id < 0 || int(id) >= len(g.nodes) {
		return fmt.Errorf("set pinned %d: %w", id, ErrBadND)
	}
	if g.nodes[id].Kind != KindSubtask {
		return fmt.Errorf("set pinned %d: %w", id, ErrNotSubtask)
	}
	if proc < Unpinned {
		return fmt.Errorf("set pinned %d: invalid processor %d", id, proc)
	}
	g.nodes[id].Pinned = proc
	return nil
}

// SetCost overwrites the worst-case execution time of subtask id (or the
// message size of message id). Intended for annotating clones, e.g. when
// re-distributing a workload whose measured execution times drifted — the
// delta workload of core.DistributeDelta.
func (g *Graph) SetCost(id NodeID, cost float64) error {
	if id < 0 || int(id) >= len(g.nodes) {
		return fmt.Errorf("set cost %d: %w", id, ErrBadND)
	}
	if cost < 0 {
		return fmt.Errorf("set cost %d: %w", id, ErrNegativeCost)
	}
	if g.nodes[id].Kind == KindSubtask {
		g.nodes[id].Cost = cost
	} else {
		g.nodes[id].Size = cost
	}
	return nil
}

// SetEndToEnd overwrites the end-to-end deadline of output subtask id.
// It returns an error if id is not an output subtask.
func (g *Graph) SetEndToEnd(id NodeID, deadline float64) error {
	if id < 0 || int(id) >= len(g.nodes) {
		return fmt.Errorf("set end-to-end %d: %w", id, ErrBadND)
	}
	if g.nodes[id].Kind != KindSubtask || len(g.succ[id]) != 0 {
		return fmt.Errorf("set end-to-end %d: not an output subtask", id)
	}
	g.nodes[id].EndToEnd = deadline
	return nil
}
