// Package taskgraph models real-time applications as directed acyclic task
// graphs, following the task model of Jonsson & Shin (ICDCS 1997), Section 3.
//
// Nodes are either ordinary subtasks (computation, characterized by a
// worst-case execution time) or communication subtasks (the message passed
// along a precedence arc, characterized by a size in data items). Every
// precedence arc between two ordinary subtasks is materialized as a
// communication subtask so that deadline-distribution algorithms can assign
// release times and deadlines to messages as well, enabling deadline-based
// communication scheduling.
//
// A subtask with no predecessors is an input subtask; one with no successors
// is an output subtask. Input subtasks carry application release times and
// output subtasks carry end-to-end deadlines.
package taskgraph

import (
	"errors"
	"fmt"
	"strconv"
)

// NodeID identifies a node within a single Graph. IDs are dense indices
// assigned in creation order.
type NodeID int

// None is the invalid NodeID.
const None NodeID = -1

// Kind distinguishes ordinary subtasks from communication subtasks.
type Kind int

const (
	// KindSubtask is an ordinary computation subtask.
	KindSubtask Kind = iota + 1
	// KindMessage is a communication subtask materializing a precedence arc.
	KindMessage
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindSubtask:
		return "subtask"
	case KindMessage:
		return "message"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Node is one vertex of the task graph. For KindSubtask, Cost is the
// worst-case execution time c_i. For KindMessage, Size is the maximum
// message size m_ij in data items; the real communication cost is derived
// from Size by the platform once assignments are known.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string

	// Cost is the worst-case execution time of an ordinary subtask, in
	// abstract time units. Zero for messages.
	Cost float64

	// Size is the message size in data items. Zero for ordinary subtasks.
	Size float64

	// Release is the application release time. Meaningful only for input
	// subtasks (it is the earliest time the application may start).
	Release float64

	// EndToEnd is the end-to-end deadline D measured from the release of
	// the corresponding input subtasks. Meaningful only for output
	// subtasks; zero means "not set".
	EndToEnd float64

	// Pinned is the processor this subtask is strictly assigned to, or
	// Unpinned. Pinned subtasks model the paper's strict locality
	// constraints ("tasks constrained by demands of resources in their
	// physical proximity such as sensors and actuators"); the rest of the
	// graph is placed freely by the scheduler.
	Pinned int
}

// Unpinned marks a subtask without a strict locality constraint.
const Unpinned = -1

// Graph is an immutable-after-build directed acyclic task graph. Build one
// with a Builder. The zero value is an empty graph.
//
// Adjacency is stored in compressed sparse row (CSR) form: the successors
// of node id are succAdj[succOff[id]:succOff[id+1]], likewise for
// predecessors. The flat layout keeps the distribution DP's inner loops on
// contiguous memory (no per-node slice headers, no pointer chasing) and
// makes Clone cheap: topology is immutable after Finalize, so clones share
// the offset/edge/topo arrays and copy only the mutable per-node fields.
type Graph struct {
	nodes []Node

	succOff []int32
	succAdj []NodeID
	predOff []int32
	predAdj []NodeID

	// Flat views of the hot per-node fields, indexed by NodeID. kinds is
	// immutable and shared across clones; costs mirrors Node.Cost for
	// subtasks and Node.Size for messages and is kept in sync by SetCost.
	kinds []Kind
	costs []float64

	topo []NodeID // cached topological order, set by finalize

	// outputs caches the output subtasks (no successors) in ID order; the
	// node set and arcs are immutable after Finalize, so clones share it.
	outputs []NodeID
	// execLP caches the execution-time longest path (the denominator of
	// AvgParallelism); it depends on subtask costs, so SetCost keeps it in
	// sync and Clone copies the value.
	execLP float64
}

// Errors returned by Builder.Finalize and graph validation.
var (
	ErrCycle        = errors.New("task graph contains a cycle")
	ErrEmpty        = errors.New("task graph has no subtasks")
	ErrBadND        = errors.New("node does not exist")
	ErrSelfArc      = errors.New("arc connects a subtask to itself")
	ErrDupArc       = errors.New("duplicate arc between subtasks")
	ErrNotSubtask   = errors.New("arc endpoint is not an ordinary subtask")
	ErrNegativeCost = errors.New("negative execution time or message size")
)

// builderArc records one Connect call: subtask u -> message m -> subtask v.
// Finalize replays the list in insertion order to fill the CSR arrays, so
// per-node adjacency order matches the historical append order exactly.
type builderArc struct {
	u, v, m NodeID
}

// Builder incrementally constructs a Graph. It is not safe for concurrent
// use. After Finalize succeeds the builder must not be reused.
type Builder struct {
	g    Graph
	arcs map[[2]NodeID]bool // duplicate-arc dedup, allocated on first Connect
	list []builderArc
	err  error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// NewBuilderHint returns an empty Builder presized for roughly nodes total
// nodes (subtasks plus materialized messages). Generators that know their
// counts up front use it to avoid append regrowth; the hint is only a
// capacity and never limits the graph.
func NewBuilderHint(nodes int) *Builder {
	if nodes < 0 {
		nodes = 0
	}
	b := &Builder{}
	b.g.nodes = make([]Node, 0, nodes)
	// Roughly half the nodes of a typical graph are messages, one per arc.
	b.list = make([]builderArc, 0, nodes/2+1)
	return b
}

// AddSubtask adds an ordinary subtask with the given name and worst-case
// execution time, returning its NodeID. An empty name is replaced by a
// generated one. Errors are deferred to Finalize.
func (b *Builder) AddSubtask(name string, cost float64) NodeID {
	id := NodeID(len(b.g.nodes))
	if name == "" {
		name = "t" + strconv.Itoa(int(id))
	}
	if cost < 0 && b.err == nil {
		b.err = fmt.Errorf("subtask %q: cost %v: %w", name, cost, ErrNegativeCost)
	}
	b.g.nodes = append(b.g.nodes, Node{ID: id, Kind: KindSubtask, Name: name, Cost: cost, Pinned: Unpinned})
	return id
}

// Connect adds a precedence arc from subtask u to subtask v carrying a
// message of size data items, materialized as a communication subtask. It
// returns the NodeID of the communication subtask. Errors are deferred to
// Finalize.
func (b *Builder) Connect(u, v NodeID, size float64) NodeID {
	if b.err == nil {
		switch {
		case !b.valid(u) || !b.valid(v):
			b.err = fmt.Errorf("connect %d -> %d: %w", u, v, ErrBadND)
		case u == v:
			b.err = fmt.Errorf("connect %d -> %d: %w", u, v, ErrSelfArc)
		case b.g.nodes[u].Kind != KindSubtask || b.g.nodes[v].Kind != KindSubtask:
			b.err = fmt.Errorf("connect %d -> %d: %w", u, v, ErrNotSubtask)
		case b.arcs[[2]NodeID{u, v}]:
			b.err = fmt.Errorf("connect %d -> %d: %w", u, v, ErrDupArc)
		case size < 0:
			b.err = fmt.Errorf("connect %d -> %d: size %v: %w", u, v, size, ErrNegativeCost)
		}
	}
	if b.err != nil {
		return None
	}
	if b.arcs == nil {
		b.arcs = make(map[[2]NodeID]bool)
	}
	b.arcs[[2]NodeID{u, v}] = true

	m := NodeID(len(b.g.nodes))
	name := "m" + strconv.Itoa(int(u)) + "_" + strconv.Itoa(int(v))
	b.g.nodes = append(b.g.nodes, Node{ID: m, Kind: KindMessage, Name: name, Size: size, Pinned: Unpinned})
	b.list = append(b.list, builderArc{u: u, v: v, m: m})
	return m
}

// SetRelease sets the application release time of subtask id. It is only
// meaningful for input subtasks; Finalize rejects it on non-inputs.
func (b *Builder) SetRelease(id NodeID, release float64) {
	if b.err == nil && !b.valid(id) {
		b.err = fmt.Errorf("set release %d: %w", id, ErrBadND)
		return
	}
	if b.err == nil {
		b.g.nodes[id].Release = release
	}
}

// Pin strictly assigns subtask id to the given processor (a strict
// locality constraint). Processor indices are validated by the scheduler
// against the concrete platform; Finalize only rejects negative values
// other than Unpinned and pins on communication subtasks.
func (b *Builder) Pin(id NodeID, proc int) {
	if b.err == nil && !b.valid(id) {
		b.err = fmt.Errorf("pin %d: %w", id, ErrBadND)
		return
	}
	if b.err != nil {
		return
	}
	switch {
	case b.g.nodes[id].Kind != KindSubtask:
		b.err = fmt.Errorf("pin %d: %w", id, ErrNotSubtask)
	case proc < 0:
		b.err = fmt.Errorf("pin %d to processor %d: negative processor", id, proc)
	default:
		b.g.nodes[id].Pinned = proc
	}
}

// SetEndToEnd sets the end-to-end deadline on output subtask id.
func (b *Builder) SetEndToEnd(id NodeID, deadline float64) {
	if b.err == nil && !b.valid(id) {
		b.err = fmt.Errorf("set end-to-end %d: %w", id, ErrBadND)
		return
	}
	if b.err == nil {
		b.g.nodes[id].EndToEnd = deadline
	}
}

func (b *Builder) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(b.g.nodes)
}

// Finalize validates the constructed graph, compacts its adjacency into the
// CSR layout, and returns it. The returned Graph must not be modified.
func (b *Builder) Finalize() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &b.g
	if g.NumSubtasks() == 0 {
		return nil, ErrEmpty
	}
	g.buildCSR(b.list)
	topo, err := g.computeTopo()
	if err != nil {
		return nil, err
	}
	g.topo = topo
	for i := range g.nodes {
		if g.kinds[i] == KindSubtask && g.OutDegree(NodeID(i)) == 0 {
			g.outputs = append(g.outputs, NodeID(i))
		}
	}
	g.execLP = g.computeExecLongestPath()
	for _, n := range g.nodes {
		if n.Kind == KindSubtask && n.Release != 0 && g.InDegree(n.ID) != 0 {
			return nil, fmt.Errorf("subtask %q has a release time but is not an input subtask", n.Name)
		}
		if n.EndToEnd != 0 && g.OutDegree(n.ID) != 0 {
			return nil, fmt.Errorf("subtask %q has an end-to-end deadline but is not an output subtask", n.Name)
		}
	}
	return g, nil
}

// buildCSR compacts the builder's arc list into offset+flat-edge arrays and
// materializes the flat kind/cost views. Each Connect contributed two
// half-edges (u->m and m->v); replaying arcs in insertion order fills every
// node's region left to right, preserving historical adjacency order.
func (g *Graph) buildCSR(arcs []builderArc) {
	n := len(g.nodes)
	g.succOff = make([]int32, n+1)
	g.predOff = make([]int32, n+1)
	for _, a := range arcs {
		g.succOff[a.u+1]++
		g.succOff[a.m+1]++
		g.predOff[a.m+1]++
		g.predOff[a.v+1]++
	}
	for i := 0; i < n; i++ {
		g.succOff[i+1] += g.succOff[i]
		g.predOff[i+1] += g.predOff[i]
	}
	edges := 2 * len(arcs)
	g.succAdj = make([]NodeID, edges)
	g.predAdj = make([]NodeID, edges)
	sNext := make([]int32, n)
	pNext := make([]int32, n)
	copy(sNext, g.succOff[:n])
	copy(pNext, g.predOff[:n])
	for _, a := range arcs {
		g.succAdj[sNext[a.u]] = a.m
		sNext[a.u]++
		g.succAdj[sNext[a.m]] = a.v
		sNext[a.m]++
		g.predAdj[pNext[a.m]] = a.u
		pNext[a.m]++
		g.predAdj[pNext[a.v]] = a.m
		pNext[a.v]++
	}

	g.kinds = make([]Kind, n)
	g.costs = make([]float64, n)
	for i := range g.nodes {
		g.kinds[i] = g.nodes[i].Kind
		if g.nodes[i].Kind == KindSubtask {
			g.costs[i] = g.nodes[i].Cost
		} else {
			g.costs[i] = g.nodes[i].Size
		}
	}
}

// NumNodes returns the total node count (subtasks + messages).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumSubtasks returns the number of ordinary subtasks.
func (g *Graph) NumSubtasks() int {
	n := 0
	for i := range g.nodes {
		if g.nodes[i].Kind == KindSubtask {
			n++
		}
	}
	return n
}

// NumMessages returns the number of communication subtasks.
func (g *Graph) NumMessages() int { return len(g.nodes) - g.NumSubtasks() }

// Node returns the node with the given ID. The returned value is a copy.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Nodes returns a copy of all nodes in ID order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// NodesView returns the graph's nodes in ID order without copying. The
// returned slice is a view of the graph's own storage and must not be
// modified; use Nodes for a private copy. Read-heavy per-run loops
// (schedule measurement, assignment, feasibility) iterate this view —
// the Nodes copy was the single largest allocation source of a sweep.
func (g *Graph) NodesView() []Node { return g.nodes }

// Kinds returns the node kinds indexed by NodeID. The returned slice is a
// shared view and must not be modified.
func (g *Graph) Kinds() []Kind { return g.kinds }

// Costs returns the hot cost field per node — Node.Cost for subtasks,
// Node.Size for messages — indexed by NodeID. The returned slice is a view
// kept in sync by SetCost and must not be modified.
func (g *Graph) Costs() []float64 { return g.costs }

// ReleaseOf returns the application release time of id without copying the
// whole Node, for anchor computations in the distribution hot path.
func (g *Graph) ReleaseOf(id NodeID) float64 { return g.nodes[id].Release }

// EndToEndOf returns the end-to-end deadline of id without copying the
// whole Node.
func (g *Graph) EndToEndOf(id NodeID) float64 { return g.nodes[id].EndToEnd }

// PinnedOf returns the strict-locality pin of id (Unpinned when free)
// without copying the whole Node, for the dispatch hot path.
func (g *Graph) PinnedOf(id NodeID) int { return g.nodes[id].Pinned }

// Succ returns the successor IDs of id. The returned slice is a CSR
// sub-slice and must not be modified.
func (g *Graph) Succ(id NodeID) []NodeID {
	return g.succAdj[g.succOff[id]:g.succOff[id+1]]
}

// Pred returns the predecessor IDs of id. The returned slice is a CSR
// sub-slice and must not be modified.
func (g *Graph) Pred(id NodeID) []NodeID {
	return g.predAdj[g.predOff[id]:g.predOff[id+1]]
}

// OutDegree returns the number of successors of id.
func (g *Graph) OutDegree(id NodeID) int {
	return int(g.succOff[id+1] - g.succOff[id])
}

// InDegree returns the number of predecessors of id.
func (g *Graph) InDegree(id NodeID) int {
	return int(g.predOff[id+1] - g.predOff[id])
}

// SuccCSR exposes the raw successor CSR arrays (offsets and flat edges) for
// hot loops that iterate many adjacency lists — the distribution DP and
// reachability search. Neither slice may be modified.
func (g *Graph) SuccCSR() ([]int32, []NodeID) { return g.succOff, g.succAdj }

// PredCSR exposes the raw predecessor CSR arrays. Neither slice may be
// modified.
func (g *Graph) PredCSR() ([]int32, []NodeID) { return g.predOff, g.predAdj }

// Inputs returns the IDs of all input subtasks (ordinary subtasks with no
// predecessors), in ID order.
func (g *Graph) Inputs() []NodeID {
	var out []NodeID
	for i := range g.nodes {
		if g.kinds[i] == KindSubtask && g.InDegree(NodeID(i)) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Outputs returns the IDs of all output subtasks (ordinary subtasks with no
// successors), in ID order. The returned slice is a copy; hot paths use
// OutputsView instead.
func (g *Graph) Outputs() []NodeID {
	return append([]NodeID(nil), g.outputs...)
}

// OutputsView is Outputs without the copy: it returns the graph's cached
// output list directly. The returned slice must not be modified.
func (g *Graph) OutputsView() []NodeID { return g.outputs }

// TopoOrder returns a topological order over all nodes. The returned slice
// must not be modified.
func (g *Graph) TopoOrder() []NodeID { return g.topo }

// computeTopo runs Kahn's algorithm over the CSR arrays, returning ErrCycle
// on failure.
func (g *Graph) computeTopo() ([]NodeID, error) {
	n := len(g.nodes)
	indeg := make([]int32, n)
	for i := 0; i < n; i++ {
		indeg[i] = g.predOff[i+1] - g.predOff[i]
	}
	queue := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.succAdj[g.succOff[u]:g.succOff[u+1]] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Clone returns a copy of the graph that may be annotated (end-to-end
// deadlines, pins, costs overwritten) without affecting the original.
// Topology is immutable after Finalize, so the CSR arrays, topological
// order, and kind view are shared; only the mutable per-node state (nodes,
// costs) is copied.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:   make([]Node, len(g.nodes)),
		succOff: g.succOff,
		succAdj: g.succAdj,
		predOff: g.predOff,
		predAdj: g.predAdj,
		kinds:   g.kinds,
		costs:   make([]float64, len(g.costs)),
		topo:    g.topo,
		outputs: g.outputs,
		execLP:  g.execLP,
	}
	copy(c.nodes, g.nodes)
	copy(c.costs, g.costs)
	return c
}

// SetPinned overwrites the strict locality constraint of subtask id
// (Unpinned clears it). Intended for annotating clones, e.g. when applying
// a computed task assignment.
func (g *Graph) SetPinned(id NodeID, proc int) error {
	if id < 0 || int(id) >= len(g.nodes) {
		return fmt.Errorf("set pinned %d: %w", id, ErrBadND)
	}
	if g.nodes[id].Kind != KindSubtask {
		return fmt.Errorf("set pinned %d: %w", id, ErrNotSubtask)
	}
	if proc < Unpinned {
		return fmt.Errorf("set pinned %d: invalid processor %d", id, proc)
	}
	g.nodes[id].Pinned = proc
	return nil
}

// SetCost overwrites the worst-case execution time of subtask id (or the
// message size of message id). Intended for annotating clones, e.g. when
// re-distributing a workload whose measured execution times drifted — the
// delta workload of core.DistributeDelta.
func (g *Graph) SetCost(id NodeID, cost float64) error {
	if id < 0 || int(id) >= len(g.nodes) {
		return fmt.Errorf("set cost %d: %w", id, ErrBadND)
	}
	if cost < 0 {
		return fmt.Errorf("set cost %d: %w", id, ErrNegativeCost)
	}
	if g.nodes[id].Kind == KindSubtask {
		g.nodes[id].Cost = cost
		g.costs[id] = cost
		// Subtask execution times feed the longest-path memo; message
		// sizes do not.
		g.execLP = g.computeExecLongestPath()
		return nil
	}
	g.nodes[id].Size = cost
	g.costs[id] = cost
	return nil
}

// SetEndToEnd overwrites the end-to-end deadline of output subtask id.
// It returns an error if id is not an output subtask.
func (g *Graph) SetEndToEnd(id NodeID, deadline float64) error {
	if id < 0 || int(id) >= len(g.nodes) {
		return fmt.Errorf("set end-to-end %d: %w", id, ErrBadND)
	}
	if g.nodes[id].Kind != KindSubtask || g.OutDegree(id) != 0 {
		return fmt.Errorf("set end-to-end %d: not an output subtask", id)
	}
	g.nodes[id].EndToEnd = deadline
	return nil
}
