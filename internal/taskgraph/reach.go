package taskgraph

import "slices"

// Reach answers repeated reachability queries over one graph without
// allocating per query. It is the pruning primitive of the deadline
// distributor's critical-path search: each per-start DP only needs the
// nodes actually reachable from that start through still-unassigned nodes,
// which is typically a small fraction of the graph once slicing has begun.
//
// A Reach is not safe for concurrent use; create one per goroutine.
type Reach struct {
	g     *Graph
	index []int // topological position per node
	mark  []uint64
	gen   uint64
	buf   []NodeID
	stack []NodeID
}

// NewReach returns a reusable reachability scratch for g.
func NewReach(g *Graph) *Reach {
	n := g.NumNodes()
	r := &Reach{
		g:     g,
		index: make([]int, n),
		mark:  make([]uint64, n),
	}
	for i, id := range g.TopoOrder() {
		r.index[id] = i
	}
	return r
}

// TopoIndex returns the topological position of id (the index of id in
// TopoOrder).
func (r *Reach) TopoIndex(id NodeID) int { return r.index[id] }

// From returns every node reachable from start (inclusive) through nodes
// not excluded by skip, in topological order. Arcs into skipped nodes are
// not followed; start itself is never skipped. The returned slice is
// reused by the next call and must not be retained.
func (r *Reach) From(start NodeID, skip func(NodeID) bool) []NodeID {
	r.gen++
	r.buf = r.buf[:0]
	r.stack = append(r.stack[:0], start)
	r.mark[start] = r.gen
	for len(r.stack) > 0 {
		u := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		r.buf = append(r.buf, u)
		for _, v := range r.g.Succ(u) {
			if r.mark[v] == r.gen || skip(v) {
				continue
			}
			r.mark[v] = r.gen
			r.stack = append(r.stack, v)
		}
	}
	slices.SortFunc(r.buf, func(a, b NodeID) int { return r.index[a] - r.index[b] })
	return r.buf
}
