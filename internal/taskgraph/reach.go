package taskgraph

import "math/bits"

// Reach answers repeated reachability queries over one graph without
// allocating per query. It is the pruning primitive of the deadline
// distributor's critical-path search: each per-start DP only needs the
// nodes actually reachable from that start through still-unassigned nodes,
// which is typically a small fraction of the graph once slicing has begun.
//
// Two backends answer the same query: From takes the skip set as a
// predicate and walks successor lists node by node; FromBits takes it as a
// word-packed bitset and expands whole successor sets with word OR/AND-NOT
// sweeps over masks precomputed from the CSR layout. Their results are
// identical (the predicate form is retained as the naive shadow for
// property tests and for callers without a bitset).
//
// A Reach is not safe for concurrent use; create one per goroutine.
type Reach struct {
	g       *Graph
	succOff []int32  // CSR successor offsets of g, bound by Reset
	succAdj []NodeID // CSR flat successor edges of g
	index   []int    // topological position per node
	mark    []uint64
	gen     uint64
	buf     []NodeID
	stack   []NodeID

	// Bitset backend (FromBits), built lazily on first use and keyed on
	// the bound CSR arrays so clones sharing topology reuse the masks.
	// succMask holds one words-long row per node: bit v of row u is set
	// iff u -> v is an arc.
	words     int
	succMask  []uint64
	reached   []uint64
	maskNodes int
	maskEdges int
	maskAdj   *NodeID
}

// NewReach returns a reusable reachability scratch for g.
func NewReach(g *Graph) *Reach {
	r := &Reach{}
	r.Reset(g)
	return r
}

// Reset rebinds the scratch to g, reusing its buffers. Pending marks stay
// valid to skip: From bumps the generation before marking, so entries left
// by earlier graphs can never match.
func (r *Reach) Reset(g *Graph) {
	n := g.NumNodes()
	r.g = g
	r.succOff, r.succAdj = g.SuccCSR()
	if cap(r.index) < n {
		r.index = make([]int, n)
		r.mark = make([]uint64, n)
	} else {
		r.index = r.index[:n]
		r.mark = r.mark[:n]
	}
	for i, id := range g.TopoOrder() {
		r.index[id] = i
	}
}

// TopoIndex returns the topological position of id (the index of id in
// TopoOrder).
func (r *Reach) TopoIndex(id NodeID) int { return r.index[id] }

// From returns every node reachable from start (inclusive) through nodes
// not excluded by skip, in topological order. Arcs into skipped nodes are
// not followed; start itself is never skipped. The returned slice is
// reused by the next call and must not be retained.
func (r *Reach) From(start NodeID, skip func(NodeID) bool) []NodeID {
	r.gen++
	count := 1
	r.stack = append(r.stack[:0], start)
	r.mark[start] = r.gen
	for len(r.stack) > 0 {
		u := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		for _, v := range r.succAdj[r.succOff[u]:r.succOff[u+1]] {
			if r.mark[v] == r.gen || skip(v) {
				continue
			}
			r.mark[v] = r.gen
			count++
			r.stack = append(r.stack, v)
		}
	}
	// Every reached node is a descendant of start, so it sits at or after
	// start in the topological order: collecting the marked nodes from a
	// scan of that suffix yields topological order without a sort.
	r.buf = r.buf[:0]
	topo := r.g.TopoOrder()
	for i := r.index[start]; i < len(topo) && count > 0; i++ {
		if id := topo[i]; r.mark[id] == r.gen {
			r.buf = append(r.buf, id)
			count--
		}
	}
	return r.buf
}

// Words returns the number of 64-bit words a skip bitset for the bound
// graph must have: bit id of word id/64 stands for node id.
func (r *Reach) Words() int { return (r.g.NumNodes() + 63) / 64 }

// ReachedBits returns the reached set of the last FromBits call as a
// bitset (same packing as the skip argument). Valid until the next
// FromBits call; callers snapshot it if they need it longer.
func (r *Reach) ReachedBits() []uint64 { return r.reached }

// ensureMasks builds the per-node successor bit rows for the bound CSR
// arrays. Clones share topology, so the memo key is the CSR identity
// (edge slice base pointer + sizes), making rebinds across clones free.
func (r *Reach) ensureMasks() {
	n := r.g.NumNodes()
	var adj *NodeID
	if len(r.succAdj) > 0 {
		adj = &r.succAdj[0]
	}
	if r.maskNodes == n && r.maskEdges == len(r.succAdj) && r.maskAdj == adj && adj != nil {
		return
	}
	w := (n + 63) / 64
	r.words = w
	if need := n * w; cap(r.succMask) < need {
		r.succMask = make([]uint64, need)
	} else {
		r.succMask = r.succMask[:need]
		for i := range r.succMask {
			r.succMask[i] = 0
		}
	}
	if cap(r.reached) < w {
		r.reached = make([]uint64, w)
	} else {
		r.reached = r.reached[:w]
	}
	for u := 0; u < n; u++ {
		row := r.succMask[u*w : u*w+w]
		for _, v := range r.succAdj[r.succOff[u]:r.succOff[u+1]] {
			row[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	r.maskNodes = n
	r.maskEdges = len(r.succAdj)
	r.maskAdj = adj
}

// FromBits is From with the skip set given as a word-packed bitset (bit id
// of skip[id/64] set means node id is excluded). len(skip) must be at
// least Words(). The successor set of each visited node is merged with two
// word operations per word (OR the mask row, AND-NOT skip and the already
// reached set) instead of a per-arc walk, and the result is collected from
// the topological suffix exactly like From — so the returned slice holds
// the identical nodes in the identical order. Start itself is never
// skipped. The slice is reused by the next call and must not be retained.
func (r *Reach) FromBits(start NodeID, skip []uint64) []NodeID {
	r.ensureMasks()
	w := r.words
	reached := r.reached
	for i := range reached {
		reached[i] = 0
	}
	reached[start>>6] = 1 << (uint(start) & 63)
	// pending counts reached-but-not-yet-emitted nodes; the topo-suffix
	// scan below visits descendants of start in topological order, so by
	// the time a node is emitted all its reached predecessors have already
	// expanded into it and pending hitting zero means the frontier is done.
	pending := 1
	r.buf = r.buf[:0]
	topo := r.g.TopoOrder()
	succOff := r.succOff
	mask := r.succMask
	for i := r.index[start]; i < len(topo) && pending > 0; i++ {
		u := topo[i]
		if reached[u>>6]&(1<<(uint(u)&63)) == 0 {
			continue
		}
		r.buf = append(r.buf, u)
		pending--
		if succOff[u] == succOff[u+1] {
			continue
		}
		row := mask[int(u)*w : int(u)*w+w]
		for k := 0; k < w; k++ {
			if add := row[k] &^ skip[k] &^ reached[k]; add != 0 {
				reached[k] |= add
				pending += bits.OnesCount64(add)
			}
		}
	}
	return r.buf
}
