package taskgraph

// Reach answers repeated reachability queries over one graph without
// allocating per query. It is the pruning primitive of the deadline
// distributor's critical-path search: each per-start DP only needs the
// nodes actually reachable from that start through still-unassigned nodes,
// which is typically a small fraction of the graph once slicing has begun.
//
// A Reach is not safe for concurrent use; create one per goroutine.
type Reach struct {
	g       *Graph
	succOff []int32  // CSR successor offsets of g, bound by Reset
	succAdj []NodeID // CSR flat successor edges of g
	index   []int    // topological position per node
	mark    []uint64
	gen     uint64
	buf     []NodeID
	stack   []NodeID
}

// NewReach returns a reusable reachability scratch for g.
func NewReach(g *Graph) *Reach {
	r := &Reach{}
	r.Reset(g)
	return r
}

// Reset rebinds the scratch to g, reusing its buffers. Pending marks stay
// valid to skip: From bumps the generation before marking, so entries left
// by earlier graphs can never match.
func (r *Reach) Reset(g *Graph) {
	n := g.NumNodes()
	r.g = g
	r.succOff, r.succAdj = g.SuccCSR()
	if cap(r.index) < n {
		r.index = make([]int, n)
		r.mark = make([]uint64, n)
	} else {
		r.index = r.index[:n]
		r.mark = r.mark[:n]
	}
	for i, id := range g.TopoOrder() {
		r.index[id] = i
	}
}

// TopoIndex returns the topological position of id (the index of id in
// TopoOrder).
func (r *Reach) TopoIndex(id NodeID) int { return r.index[id] }

// From returns every node reachable from start (inclusive) through nodes
// not excluded by skip, in topological order. Arcs into skipped nodes are
// not followed; start itself is never skipped. The returned slice is
// reused by the next call and must not be retained.
func (r *Reach) From(start NodeID, skip func(NodeID) bool) []NodeID {
	r.gen++
	count := 1
	r.stack = append(r.stack[:0], start)
	r.mark[start] = r.gen
	for len(r.stack) > 0 {
		u := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		for _, v := range r.succAdj[r.succOff[u]:r.succOff[u+1]] {
			if r.mark[v] == r.gen || skip(v) {
				continue
			}
			r.mark[v] = r.gen
			count++
			r.stack = append(r.stack, v)
		}
	}
	// Every reached node is a descendant of start, so it sits at or after
	// start in the topological order: collecting the marked nodes from a
	// scan of that suffix yields topological order without a sort.
	r.buf = r.buf[:0]
	topo := r.g.TopoOrder()
	for i := r.index[start]; i < len(topo) && count > 0; i++ {
		if id := topo[i]; r.mark[id] == r.gen {
			r.buf = append(r.buf, id)
			count--
		}
	}
	return r.buf
}
