package taskgraph

import (
	"errors"
	"strings"
	"testing"
)

func TestPinDefaultsToUnpinned(t *testing.T) {
	g, ids := diamond(t)
	for _, id := range ids {
		if g.Node(id).Pinned != Unpinned {
			t.Errorf("node %v pinned to %d by default", id, g.Node(id).Pinned)
		}
	}
	for _, n := range g.Nodes() {
		if n.Kind == KindMessage && n.Pinned != Unpinned {
			t.Errorf("message %v pinned by default", n.ID)
		}
	}
}

func TestPinRecorded(t *testing.T) {
	b := NewBuilder()
	x := b.AddSubtask("x", 1)
	y := b.AddSubtask("y", 1)
	b.Connect(x, y, 1)
	b.Pin(x, 0)
	b.Pin(y, 3)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if g.Node(x).Pinned != 0 || g.Node(y).Pinned != 3 {
		t.Fatalf("pins = %d, %d, want 0, 3", g.Node(x).Pinned, g.Node(y).Pinned)
	}
}

func TestPinErrors(t *testing.T) {
	t.Run("unknown node", func(t *testing.T) {
		b := NewBuilder()
		b.AddSubtask("x", 1)
		b.Pin(NodeID(42), 0)
		if _, err := b.Finalize(); !errors.Is(err, ErrBadND) {
			t.Fatalf("got %v, want ErrBadND", err)
		}
	})
	t.Run("message", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddSubtask("x", 1)
		y := b.AddSubtask("y", 1)
		m := b.Connect(x, y, 1)
		b.Pin(m, 0)
		if _, err := b.Finalize(); !errors.Is(err, ErrNotSubtask) {
			t.Fatalf("got %v, want ErrNotSubtask", err)
		}
	})
	t.Run("negative processor", func(t *testing.T) {
		b := NewBuilder()
		x := b.AddSubtask("x", 1)
		b.Pin(x, -2)
		if _, err := b.Finalize(); err == nil {
			t.Fatal("negative processor accepted")
		}
	})
}

func TestPinJSONRoundTrip(t *testing.T) {
	b := NewBuilder()
	x := b.AddSubtask("x", 5)
	y := b.AddSubtask("y", 5)
	b.Connect(x, y, 1)
	b.Pin(x, 2)
	b.SetEndToEnd(y, 50)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"pinned":2`) {
		t.Fatalf("pin missing from JSON: %s", data)
	}
	g2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	var foundX, foundY bool
	for _, n := range g2.Nodes() {
		switch n.Name {
		case "x":
			foundX = true
			if n.Pinned != 2 {
				t.Errorf("x pinned = %d after round trip, want 2", n.Pinned)
			}
		case "y":
			foundY = true
			if n.Pinned != Unpinned {
				t.Errorf("y pinned = %d after round trip, want Unpinned", n.Pinned)
			}
		}
	}
	if !foundX || !foundY {
		t.Fatal("round trip lost subtasks")
	}
}

func TestPinZeroOmittedOnlyWhenUnpinned(t *testing.T) {
	// Pinning to processor 0 must survive the round trip (the sentinel is
	// Unpinned, not zero).
	b := NewBuilder()
	x := b.AddSubtask("x", 5)
	b.Pin(x, 0)
	b.SetEndToEnd(x, 50)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := g.MarshalJSON()
	g2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Node(0).Pinned != 0 {
		t.Fatalf("pin to processor 0 lost in round trip: %d", g2.Node(0).Pinned)
	}
}

func TestPinSurvivesClone(t *testing.T) {
	b := NewBuilder()
	x := b.AddSubtask("x", 5)
	b.Pin(x, 1)
	b.SetEndToEnd(x, 50)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if g.Clone().Node(x).Pinned != 1 {
		t.Fatal("clone lost pin")
	}
}

func TestSetPinnedOnGraph(t *testing.T) {
	b := NewBuilder()
	x := b.AddSubtask("x", 5)
	y := b.AddSubtask("y", 5)
	b.Connect(x, y, 1)
	b.SetEndToEnd(y, 50)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := c.SetPinned(x, 2); err != nil {
		t.Fatal(err)
	}
	if c.Node(x).Pinned != 2 {
		t.Fatalf("pinned = %d, want 2", c.Node(x).Pinned)
	}
	if err := c.SetPinned(x, Unpinned); err != nil {
		t.Fatal(err)
	}
	if c.Node(x).Pinned != Unpinned {
		t.Fatal("Unpinned did not clear the pin")
	}
	if err := c.SetPinned(NodeID(99), 0); !errors.Is(err, ErrBadND) {
		t.Errorf("bad node: %v", err)
	}
	var msg NodeID
	for _, n := range c.Nodes() {
		if n.Kind == KindMessage {
			msg = n.ID
		}
	}
	if err := c.SetPinned(msg, 0); !errors.Is(err, ErrNotSubtask) {
		t.Errorf("message pin: %v", err)
	}
	if err := c.SetPinned(x, -7); err == nil {
		t.Error("invalid processor accepted")
	}
}
