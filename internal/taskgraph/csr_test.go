package taskgraph

import (
	"math/rand"
	"testing"
)

// shadowGraph mirrors the adjacency a Builder accumulates, using the naive
// map-of-slices layout the package used before the CSR compaction. The CSR
// arrays must be observationally identical to it: same neighbor sets, same
// per-node order (the historical append order), same reachability.
type shadowGraph struct {
	succ map[NodeID][]NodeID
	pred map[NodeID][]NodeID
}

func newShadow() *shadowGraph {
	return &shadowGraph{succ: map[NodeID][]NodeID{}, pred: map[NodeID][]NodeID{}}
}

func (s *shadowGraph) connect(u, v, m NodeID) {
	s.succ[u] = append(s.succ[u], m)
	s.succ[m] = append(s.succ[m], v)
	s.pred[m] = append(s.pred[m], u)
	s.pred[v] = append(s.pred[v], m)
}

// reachFrom is a naive reimplementation of Reach.From: BFS over the shadow
// successor map honoring skip, results in topological order.
func (s *shadowGraph) reachFrom(g *Graph, start NodeID, skip func(NodeID) bool) []NodeID {
	seen := map[NodeID]bool{start: true}
	queue := []NodeID{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range s.succ[u] {
			if seen[v] || skip(v) {
				continue
			}
			seen[v] = true
			queue = append(queue, v)
		}
	}
	out := []NodeID{}
	for _, id := range g.TopoOrder() {
		if seen[id] {
			out = append(out, id)
		}
	}
	return out
}

// randomDAG builds a random layered DAG alongside its shadow adjacency.
// Arcs always go from a lower to a higher subtask index, so the graph is
// acyclic by construction.
func randomDAG(t *testing.T, rng *rand.Rand, subtasks int, hint bool) (*Graph, *shadowGraph) {
	t.Helper()
	var b *Builder
	if hint {
		b = NewBuilderHint(subtasks * 3)
	} else {
		b = NewBuilder()
	}
	sh := newShadow()
	ids := make([]NodeID, subtasks)
	for i := range ids {
		ids[i] = b.AddSubtask("", 1+rng.Float64()*9)
	}
	for i := 0; i < subtasks; i++ {
		for j := i + 1; j < subtasks; j++ {
			if rng.Float64() < 0.25 {
				m := b.Connect(ids[i], ids[j], rng.Float64()*4)
				sh.connect(ids[i], ids[j], m)
			}
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return g, sh
}

func sameIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCSRMatchesNaiveAdjacency fuzzes random DAGs and checks that every
// CSR-derived view (Succ, Pred, degrees, offsets, topological order,
// kind/cost views) agrees with the naive map-of-slices shadow.
func TestCSRMatchesNaiveAdjacency(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, sh := randomDAG(t, rng, 3+rng.Intn(14), seed%2 == 0)

		n := g.NumNodes()
		succOff, succAdj := g.SuccCSR()
		predOff, predAdj := g.PredCSR()
		if len(succOff) != n+1 || len(predOff) != n+1 {
			t.Fatalf("seed %d: offset arrays have %d/%d entries, want %d", seed, len(succOff), len(predOff), n+1)
		}
		if int(succOff[n]) != len(succAdj) || int(predOff[n]) != len(predAdj) {
			t.Fatalf("seed %d: final offsets %d/%d do not cover flat arrays %d/%d",
				seed, succOff[n], predOff[n], len(succAdj), len(predAdj))
		}
		for id := NodeID(0); int(id) < n; id++ {
			if succOff[id] > succOff[id+1] || predOff[id] > predOff[id+1] {
				t.Fatalf("seed %d: offsets not monotone at node %d", seed, id)
			}
			if !sameIDs(g.Succ(id), sh.succ[id]) {
				t.Errorf("seed %d node %d: Succ = %v, shadow %v", seed, id, g.Succ(id), sh.succ[id])
			}
			if !sameIDs(g.Pred(id), sh.pred[id]) {
				t.Errorf("seed %d node %d: Pred = %v, shadow %v", seed, id, g.Pred(id), sh.pred[id])
			}
			if g.OutDegree(id) != len(sh.succ[id]) || g.InDegree(id) != len(sh.pred[id]) {
				t.Errorf("seed %d node %d: degrees %d/%d, shadow %d/%d",
					seed, id, g.OutDegree(id), g.InDegree(id), len(sh.succ[id]), len(sh.pred[id]))
			}
			if g.kinds[id] != g.Node(id).Kind {
				t.Errorf("seed %d node %d: kind view %v != node %v", seed, id, g.kinds[id], g.Node(id).Kind)
			}
			want := g.Node(id).Cost
			if g.Node(id).Kind == KindMessage {
				want = g.Node(id).Size
			}
			if g.Costs()[id] != want {
				t.Errorf("seed %d node %d: cost view %v != node %v", seed, id, g.Costs()[id], want)
			}
		}

		topo := g.TopoOrder()
		if len(topo) != n {
			t.Fatalf("seed %d: topo has %d nodes, want %d", seed, len(topo), n)
		}
		pos := make([]int, n)
		for i, id := range topo {
			pos[id] = i
		}
		for u, vs := range sh.succ {
			for _, v := range vs {
				if pos[u] >= pos[v] {
					t.Errorf("seed %d: topo places %d (pos %d) after successor %d (pos %d)",
						seed, u, pos[u], v, pos[v])
				}
			}
		}
	}
}

// TestReachMatchesNaiveBFS checks Reach.From against a plain BFS over the
// shadow adjacency for random starts and random skip sets, including reuse
// of one Reach across queries and graphs.
func TestReachMatchesNaiveBFS(t *testing.T) {
	r := &Reach{} // Reset binds it to each graph in turn
	for seed := int64(100); seed < 112; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, sh := randomDAG(t, rng, 4+rng.Intn(12), false)
		r.Reset(g)
		for q := 0; q < 8; q++ {
			start := NodeID(rng.Intn(g.NumNodes()))
			skipped := make(map[NodeID]bool)
			for id := 0; id < g.NumNodes(); id++ {
				if rng.Float64() < 0.3 {
					skipped[NodeID(id)] = true
				}
			}
			skip := func(id NodeID) bool { return skipped[id] }
			got := r.From(start, skip)
			want := sh.reachFrom(g, start, skip)
			if !sameIDs(got, want) {
				t.Fatalf("seed %d query %d: Reach.From(%d) = %v, naive BFS %v", seed, q, start, got, want)
			}
		}
	}
}

// TestFromBitsMatchesFrom checks the word-parallel bitset backend against
// both the predicate backend and the naive shadow BFS: same skip set in the
// two encodings must yield the identical node slice (set AND order), and the
// ReachedBits snapshot must be exactly the bitset encoding of that slice.
// Also exercises mask memo reuse across queries, skip mutation between
// queries, and rebinds of one Reach across graphs.
func TestFromBitsMatchesFrom(t *testing.T) {
	r := &Reach{}
	for seed := int64(200); seed < 216; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, sh := randomDAG(t, rng, 4+rng.Intn(16), seed%2 == 0)
		r.Reset(g)
		skipBits := make([]uint64, r.Words())
		for q := 0; q < 10; q++ {
			start := NodeID(rng.Intn(g.NumNodes()))
			skipped := make(map[NodeID]bool)
			for i := range skipBits {
				skipBits[i] = 0
			}
			for id := 0; id < g.NumNodes(); id++ {
				if rng.Float64() < 0.35 {
					skipped[NodeID(id)] = true
					skipBits[id>>6] |= 1 << (uint(id) & 63)
				}
			}
			skip := func(id NodeID) bool { return skipped[id] }
			want := append([]NodeID(nil), r.From(start, skip)...)
			got := r.FromBits(start, skipBits)
			if !sameIDs(got, want) {
				t.Fatalf("seed %d query %d: FromBits(%d) = %v, From %v", seed, q, start, got, want)
			}
			if naive := sh.reachFrom(g, start, skip); !sameIDs(got, naive) {
				t.Fatalf("seed %d query %d: FromBits(%d) = %v, naive BFS %v", seed, q, start, got, naive)
			}
			bits := r.ReachedBits()
			wantBits := make([]uint64, r.Words())
			for _, id := range got {
				wantBits[id>>6] |= 1 << (uint(id) & 63)
			}
			for i := range wantBits {
				if bits[i] != wantBits[i] {
					t.Fatalf("seed %d query %d: ReachedBits word %d = %#x, want %#x", seed, q, i, bits[i], wantBits[i])
				}
			}
		}
	}
}

// TestCloneSharesTopology checks that Clone shares the immutable CSR arrays
// and topological order with the original while keeping costs independent.
func TestCloneSharesTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, _ := randomDAG(t, rng, 12, true)
	c := g.Clone()

	gs, ga := g.SuccCSR()
	cs, ca := c.SuccCSR()
	if &gs[0] != &cs[0] || &ga[0] != &ca[0] {
		t.Error("clone does not share CSR successor arrays")
	}
	if &g.TopoOrder()[0] != &c.TopoOrder()[0] {
		t.Error("clone does not share the topological order")
	}

	var sub NodeID = -1
	for id, k := range g.Kinds() {
		if k == KindSubtask {
			sub = NodeID(id)
			break
		}
	}
	before := g.Costs()[sub]
	if err := c.SetCost(sub, before+17); err != nil {
		t.Fatal(err)
	}
	if g.Costs()[sub] != before {
		t.Errorf("SetCost on clone leaked into original: %v -> %v", before, g.Costs()[sub])
	}
	if c.Costs()[sub] != before+17 || c.Node(sub).Cost != before+17 {
		t.Errorf("clone cost view out of sync: view %v, node %v", c.Costs()[sub], c.Node(sub).Cost)
	}
}

// TestBuilderHintEquivalence checks that NewBuilderHint only presizes: the
// finalized graph is identical to one built without a hint.
func TestBuilderHintEquivalence(t *testing.T) {
	build := func(hint bool) *Graph {
		rng := rand.New(rand.NewSource(42))
		g, _ := randomDAG(t, rng, 10, hint)
		return g
	}
	a, b := build(false), build(true)
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	if !sameIDs(a.TopoOrder(), b.TopoOrder()) {
		t.Errorf("topo orders differ: %v vs %v", a.TopoOrder(), b.TopoOrder())
	}
	for id := NodeID(0); int(id) < a.NumNodes(); id++ {
		if !sameIDs(a.Succ(id), b.Succ(id)) || !sameIDs(a.Pred(id), b.Pred(id)) {
			t.Errorf("adjacency differs at node %d", id)
		}
	}
}
