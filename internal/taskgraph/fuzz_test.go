package taskgraph

import "testing"

// FuzzDecode exercises the JSON decoder with arbitrary input: it must
// never panic, and whenever it accepts an input, the resulting graph must
// re-encode and decode to an equivalent graph (round-trip stability).
func FuzzDecode(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"subtasks":[],"arcs":[]}`,
		`{"subtasks":[{"name":"a","cost":1}],"arcs":[]}`,
		`{"subtasks":[{"name":"a","cost":1},{"name":"b","cost":2,"endToEnd":9}],"arcs":[{"from":"a","to":"b","size":3}]}`,
		`{"subtasks":[{"name":"a","cost":1,"pinned":0},{"name":"b","cost":2,"endToEnd":9,"release":1}],"arcs":[{"from":"a","to":"b","size":3}]}`,
		`{"subtasks":[{"name":"a","cost":-1}],"arcs":[]}`,
		`{"subtasks":[{"name":"a","cost":1}],"arcs":[{"from":"a","to":"a","size":1}]}`,
		`[1,2,3]`,
		`{"subtasks":[{"name":"a","cost":1e308},{"name":"b","cost":1,"endToEnd":1}],"arcs":[{"from":"b","to":"a","size":0}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted graphs must be structurally sound and round-trip.
		if g.NumSubtasks() == 0 {
			t.Fatal("decoder accepted an empty graph")
		}
		enc, err := g.MarshalJSON()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		g2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if g2.NumSubtasks() != g.NumSubtasks() || g2.NumMessages() != g.NumMessages() {
			t.Fatalf("round trip changed structure: %d/%d vs %d/%d",
				g.NumSubtasks(), g.NumMessages(), g2.NumSubtasks(), g2.NumMessages())
		}
		if g2.TotalWork() != g.TotalWork() {
			t.Fatalf("round trip changed workload: %v vs %v", g.TotalWork(), g2.TotalWork())
		}
	})
}
