package taskgraph

// This file contains structural analyses used both by the workload
// generators (depth, parallelism) and by the deadline-distribution
// algorithms (longest paths, end-to-end deadline derivation). The loops
// iterate the flat CSR arrays and the kind/cost views directly: these
// analyses run inside the per-cell fingerprint and assignment stages, so
// they must not allocate Node copies per visit.

// CostFunc maps a node to the cost it contributes to a path. Typical
// instances charge Node.Cost for subtasks and either zero (communication
// cost non-existing) or Size-proportional cost (communication cost always
// assumed) for messages.
type CostFunc func(Node) float64

// ExecCost charges only ordinary subtask execution time; messages are free.
// This is the paper's CCNE view of path length.
func ExecCost(n Node) float64 {
	if n.Kind == KindSubtask {
		return n.Cost
	}
	return 0
}

// Depth returns the number of subtask levels in the graph: the maximum
// number of ordinary subtasks on any path. Messages do not count toward
// depth. An empty graph has depth 0.
func (g *Graph) Depth() int {
	depth := make([]int, len(g.nodes))
	maxDepth := 0
	for _, id := range g.topo {
		d := depth[id]
		if g.kinds[id] == KindSubtask {
			d++
		}
		if d > maxDepth {
			maxDepth = d
		}
		for _, s := range g.succAdj[g.succOff[id]:g.succOff[id+1]] {
			if d > depth[s] {
				depth[s] = d
			}
		}
		depth[id] = d
	}
	return maxDepth
}

// Level returns, for every node, its subtask level: the maximum number of
// ordinary subtasks on any path ending at (and including, for subtasks) the
// node. Input subtasks are level 1; messages share the level of their
// producer.
func (g *Graph) Level() []int {
	level := make([]int, len(g.nodes))
	for _, id := range g.topo {
		l := 0
		for _, p := range g.predAdj[g.predOff[id]:g.predOff[id+1]] {
			if level[p] > l {
				l = level[p]
			}
		}
		if g.kinds[id] == KindSubtask {
			l++
		}
		level[id] = l
	}
	return level
}

// TotalWork returns the accumulated execution time of all ordinary subtasks
// (the "task graph workload" of the paper).
func (g *Graph) TotalWork() float64 {
	sum := 0.0
	for i, k := range g.kinds {
		if k == KindSubtask {
			sum += g.costs[i]
		}
	}
	return sum
}

// LongestPath returns the maximum accumulated cost over all paths in the
// graph under the given cost function.
func (g *Graph) LongestPath(cost CostFunc) float64 {
	best := 0.0
	acc := make([]float64, len(g.nodes))
	for _, id := range g.topo {
		v := acc[id] + cost(g.nodes[id])
		if v > best {
			best = v
		}
		for _, s := range g.succAdj[g.succOff[id]:g.succOff[id+1]] {
			if v > acc[s] {
				acc[s] = v
			}
		}
		acc[id] = v
	}
	return best
}

// execLongestPath returns the execution-time longest path. The value is
// memoized: Finalize computes it and SetCost keeps it in sync, so
// AvgParallelism — which runs per (graph, size) cell inside the ADAPT
// distribution hot path — costs a field read instead of an O(V+E) sweep
// with a scratch allocation.
func (g *Graph) execLongestPath() float64 { return g.execLP }

// computeExecLongestPath is LongestPath(ExecCost) on the flat views,
// without the per-node closure call and Node copy.
func (g *Graph) computeExecLongestPath() float64 {
	best := 0.0
	acc := make([]float64, len(g.nodes))
	for _, id := range g.topo {
		v := acc[id]
		if g.kinds[id] == KindSubtask {
			v += g.costs[id]
		}
		if v > best {
			best = v
		}
		for _, s := range g.succAdj[g.succOff[id]:g.succOff[id+1]] {
			if v > acc[s] {
				acc[s] = v
			}
		}
		acc[id] = v
	}
	return best
}

// LongestPathTo returns, for every node, the maximum accumulated cost over
// all paths from any input up to and including the node, under the given
// cost function. Input release times offset the start of each path.
func (g *Graph) LongestPathTo(cost CostFunc) []float64 {
	acc := make([]float64, len(g.nodes))
	for i := range g.nodes {
		if g.InDegree(NodeID(i)) == 0 {
			acc[i] = g.nodes[i].Release
		}
	}
	for _, id := range g.topo {
		v := acc[id] + cost(g.nodes[id])
		for _, s := range g.succAdj[g.succOff[id]:g.succOff[id+1]] {
			if v > acc[s] {
				acc[s] = v
			}
		}
		acc[id] = v
	}
	return acc
}

// LongestPathFrom returns, for every node, the maximum accumulated cost over
// all paths from the node (inclusive) to any output, under the given cost
// function.
func (g *Graph) LongestPathFrom(cost CostFunc) []float64 {
	acc := make([]float64, len(g.nodes))
	for i := len(g.topo) - 1; i >= 0; i-- {
		id := g.topo[i]
		best := 0.0
		for _, s := range g.succAdj[g.succOff[id]:g.succOff[id+1]] {
			if acc[s] > best {
				best = acc[s]
			}
		}
		acc[id] = best + cost(g.nodes[id])
	}
	return acc
}

// AvgParallelism returns ξ, the average task graph parallelism: total
// workload divided by the length (in execution time) of the longest path in
// the graph. It is the adaptivity signal of the ADAPT metric. An empty or
// zero-work graph has parallelism 0.
func (g *Graph) AvgParallelism() float64 {
	lp := g.execLongestPath()
	if lp <= 0 {
		return 0
	}
	return g.TotalWork() / lp
}

// MeanSubtaskCost returns the mean execution time over ordinary subtasks
// (the MET of the paper), or 0 for an empty graph.
func (g *Graph) MeanSubtaskCost() float64 {
	sum, n := 0.0, 0
	for i, k := range g.kinds {
		if k == KindSubtask {
			sum += g.costs[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanMessageSize returns the mean size over communication subtasks, or 0
// if the graph has none.
func (g *Graph) MeanMessageSize() float64 {
	sum, n := 0.0, 0
	for i, k := range g.kinds {
		if k == KindMessage {
			sum += g.costs[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AssignDeadlinesByOLR sets the end-to-end deadline of every output subtask
// to olr × (longest execution-time path from any input subtask to that
// output), reproducing the paper's overall-laxity-ratio workload rule
// (OLR = 1.5 in all published experiments). Message costs are excluded:
// with relaxed locality constraints, real communication costs are unknown
// when deadlines are specified.
func (g *Graph) AssignDeadlinesByOLR(olr float64) {
	to := g.LongestPathTo(ExecCost)
	for i := range g.nodes {
		if g.kinds[i] == KindSubtask && g.OutDegree(NodeID(i)) == 0 {
			g.nodes[i].EndToEnd = olr * to[i]
		}
	}
}

// AssignDeadlinesByTotalWork sets every output's end-to-end deadline to
// olr × total graph workload. This is the alternative (looser) reading of
// the paper's OLR rule, provided for comparison; see DESIGN.md.
func (g *Graph) AssignDeadlinesByTotalWork(olr float64) {
	d := olr * g.TotalWork()
	for i := range g.nodes {
		if g.kinds[i] == KindSubtask && g.OutDegree(NodeID(i)) == 0 {
			g.nodes[i].EndToEnd = d
		}
	}
}
