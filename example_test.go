package deadlinedist_test

import (
	"fmt"

	dl "deadlinedist"
)

// Example runs the complete paper pipeline on a small application: build
// the task graph, distribute the end-to-end deadline before any task
// assignment exists, schedule with the deadline-driven list scheduler, and
// read off the paper's quality measure.
func Example() {
	b := dl.NewGraphBuilder()
	sense := b.AddSubtask("sense", 10)
	plan := b.AddSubtask("plan", 25)
	act := b.AddSubtask("act", 10)
	b.Connect(sense, plan, 8)
	b.Connect(plan, act, 4)
	b.SetEndToEnd(act, 120)
	g, err := b.Finalize()
	if err != nil {
		fmt.Println(err)
		return
	}

	sys, _ := dl.NewSystem(4)
	res, _ := dl.Distribute(g, sys, dl.ADAPT(1.25), dl.CCNE())
	sched, _ := dl.Schedule(g, sys, res, dl.SchedulerConfig{RespectRelease: true})
	fmt.Printf("max lateness: %.2f\n", sched.MaxLateness(g, res))
	// Output:
	// max lateness: -22.92
}

// ExampleDistribute shows the windows the PURE metric assigns to a chain:
// every subtask receives an equal share of the path slack.
func ExampleDistribute() {
	b := dl.NewGraphBuilder()
	a := b.AddSubtask("a", 10)
	c := b.AddSubtask("b", 20)
	d := b.AddSubtask("c", 30)
	b.Connect(a, c, 5)
	b.Connect(c, d, 5)
	b.SetEndToEnd(d, 90)
	g, _ := b.Finalize()
	sys, _ := dl.NewSystem(2)

	res, _ := dl.Distribute(g, sys, dl.PURE(), dl.CCNE())
	for _, n := range g.Nodes() {
		if n.Kind == dl.KindSubtask {
			fmt.Printf("%s: window [%.0f, %.0f)\n", n.Name, res.Release[n.ID], res.Absolute[n.ID])
		}
	}
	// Output:
	// a: window [0, 20)
	// b: window [20, 50)
	// c: window [50, 90)
}

// ExampleUnrollPeriodic expands a periodic task over its hyperperiod.
func ExampleUnrollPeriodic() {
	b := dl.NewGraphBuilder()
	s := b.AddSubtask("sample", 2)
	c := b.AddSubtask("compute", 3)
	b.Connect(s, c, 1)
	g, _ := b.Finalize()

	combined, hyper, _ := dl.UnrollPeriodic([]dl.PeriodicTask{
		{Name: "fast", Graph: g, Period: 10},
		{Name: "slow", Graph: g, Period: 20},
	})
	fmt.Printf("hyperperiod %d, %d subtask instances\n", hyper, combined.NumSubtasks())
	// Output:
	// hyperperiod 20, 6 subtask instances
}

// ExampleClusterAssignment computes a static task assignment (the
// conventional pre-scheduling step the paper's technique makes
// unnecessary) and pins it into the graph.
func ExampleClusterAssignment() {
	b := dl.NewGraphBuilder()
	u := b.AddSubtask("u", 10)
	v := b.AddSubtask("v", 10)
	w := b.AddSubtask("w", 10)
	b.Connect(u, v, 50) // heavy message: u and v cluster together
	b.SetEndToEnd(v, 100)
	b.SetEndToEnd(w, 100)
	g, _ := b.Finalize()
	sys, _ := dl.NewSystem(2)

	a, _ := dl.ClusterAssignment(g, sys)
	fmt.Printf("u and v co-located: %v\n", a[u] == a[v])
	fmt.Printf("w separated: %v\n", a[w] != a[u])
	// Output:
	// u and v co-located: true
	// w separated: true
}
