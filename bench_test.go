package deadlinedist

// Benchmarks: one per paper figure / reproduced table (regenerating a
// reduced-batch version of the experiment per iteration) plus
// component-level micro-benchmarks for the pipeline stages. The full-size
// 128-graph reproductions are run by cmd/dlexp; EXPERIMENTS.md records
// their output.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"deadlinedist/internal/core"
	"deadlinedist/internal/experiment"
	"deadlinedist/internal/generator"
	"deadlinedist/internal/metrics"
	"deadlinedist/internal/platform"
	"deadlinedist/internal/rng"
	"deadlinedist/internal/scheduler"
)

// benchBase is a reduced-batch configuration so each bench iteration runs
// the whole experiment pipeline in tens of milliseconds.
func benchBase() experiment.Config {
	cfg := experiment.Default(generator.MDET)
	cfg.Graphs = 8
	cfg.Sizes = []int{2, 4, 8, 16}
	return cfg
}

func benchFigure(b *testing.B, fn experiment.FigureFunc) {
	b.Helper()
	base := benchBase()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := fn(context.Background(), base)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkFigureAll regenerates every figure through one shared
// orchestrator per iteration — the `dlexp -figure all` shape: all tables
// run concurrently over one worker pool, sharing the content-addressed
// batch cache and the cross-table assignment cache. This is the
// regression guard for the cross-sweep orchestration layer; CI runs it
// once per push (see .github/workflows/ci.yml).
func BenchmarkFigureAll(b *testing.B) {
	base := benchBase()
	keys := experiment.FigureOrder()
	registry := experiment.Figures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orc := experiment.NewOrchestrator(0)
		cfg := base
		cfg.Orchestrator = orc
		var wg sync.WaitGroup
		errs := make([]error, len(keys))
		for ki, key := range keys {
			wg.Add(1)
			go func(ki int, fn experiment.FigureFunc) {
				defer wg.Done()
				_, errs[ki] = fn(context.Background(), cfg)
			}(ki, registry[key])
		}
		wg.Wait()
		orc.Close()
		for ki, err := range errs {
			if err != nil {
				b.Fatalf("figure %s: %v", keys[ki], err)
			}
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (BST metrics × comm estimation).
func BenchmarkFigure2(b *testing.B) { benchFigure(b, experiment.Figure2) }

// BenchmarkFigure3 regenerates Figure 3 (THRES surplus-factor sweep).
func BenchmarkFigure3(b *testing.B) { benchFigure(b, experiment.Figure3) }

// BenchmarkFigure4 regenerates Figure 4 (THRES threshold sweep).
func BenchmarkFigure4(b *testing.B) { benchFigure(b, experiment.Figure4) }

// BenchmarkFigure5 regenerates Figure 5 (PURE vs THRES vs ADAPT).
func BenchmarkFigure5(b *testing.B) { benchFigure(b, experiment.Figure5) }

// BenchmarkSection8CCR regenerates the Section 8 CCR sweep.
func BenchmarkSection8CCR(b *testing.B) { benchFigure(b, experiment.CCRSweep) }

// BenchmarkSection8MET regenerates the Section 8 MET sweep.
func BenchmarkSection8MET(b *testing.B) { benchFigure(b, experiment.METSweep) }

// BenchmarkSection8Parallelism regenerates the Section 8 parallelism sweep.
func BenchmarkSection8Parallelism(b *testing.B) { benchFigure(b, experiment.ParallelismSweep) }

// BenchmarkSection8Topology regenerates the Section 8 topology sweep.
func BenchmarkSection8Topology(b *testing.B) { benchFigure(b, experiment.TopologySweep) }

// BenchmarkSection8Shapes regenerates the structured-graph study.
func BenchmarkSection8Shapes(b *testing.B) { benchFigure(b, experiment.StructuredSweep) }

// BenchmarkExtensionBaselines regenerates the one-pass-baseline comparison.
func BenchmarkExtensionBaselines(b *testing.B) { benchFigure(b, experiment.BaselineComparison) }

// BenchmarkExtensionBus regenerates the bus-contention ablation.
func BenchmarkExtensionBus(b *testing.B) { benchFigure(b, experiment.BusAblation) }

// BenchmarkWorkerScaling runs one orchestrated sweep at increasing pool
// sizes, reporting the measured peak occupancy alongside the wall time.
// On a multi-core host the >1-worker variants must show peak-occupancy > 1
// (TestPoolOccupancyMultiCore proves it under a forced GOMAXPROCS); on a
// single-core host every variant degenerates to peak 1 and near-identical
// times — which is exactly what a BENCH snapshot recorded there should
// say, falsifiably, via its cpus/gomaxprocs/poolWorkers fields.
func BenchmarkWorkerScaling(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	asg := experiment.Slicing(core.ADAPT(1.25), core.CCNE())
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rec := metrics.New()
			cfg := benchBase()
			cfg.Metrics = rec
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				orc := experiment.NewOrchestrator(workers)
				cfg.Orchestrator = orc
				_, err := cfg.Run("bench", asg)
				orc.Close()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(rec.Snapshot().PoolPeak), "peak-occupancy")
		})
	}
}

// Component micro-benchmarks.

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	g, err := generator.Random(generator.Default(generator.MDET), rng.New(42))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchSystem(b *testing.B, n int) *System {
	b.Helper()
	sys, err := platform.New(n)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkGenerateRandom measures random task-graph generation.
func BenchmarkGenerateRandom(b *testing.B) {
	cfg := generator.Default(generator.MDET)
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := generator.Random(cfg, src.Split(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// benchShapeGraph builds one graph of the named shape at the given scale
// (structured shapes use scale as depth with a proportional width).
func benchShapeGraph(b *testing.B, shape string, scale int) *Graph {
	b.Helper()
	cfg := generator.Default(generator.MDET)
	var (
		g   *Graph
		err error
	)
	switch shape {
	case "random":
		cfg.MinSubtasks, cfg.MaxSubtasks = 2*scale, 4*scale
		g, err = generator.Random(cfg, rng.New(uint64(scale)))
	case "chain":
		g, err = generator.Structured(generator.StructuredConfig{
			Workload: cfg, Shape: generator.ShapeChain, Depth: 4 * scale,
		}, rng.New(uint64(scale)))
	case "fork-join":
		g, err = generator.Structured(generator.StructuredConfig{
			Workload: cfg, Shape: generator.ShapeForkJoin, Depth: scale, Width: 4,
		}, rng.New(uint64(scale)))
	case "layered":
		g, err = generator.Structured(generator.StructuredConfig{
			Workload: cfg, Shape: generator.ShapeLayered, Depth: scale, Width: 4,
		}, rng.New(uint64(scale)))
	default:
		b.Fatalf("unknown shape %q", shape)
	}
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkDistribute measures one deadline distribution per graph shape ×
// size × metric: the incremental critical-path search's hot path.
func BenchmarkDistribute(b *testing.B) {
	sys := benchSystem(b, 4)
	for _, shape := range []string{"random", "chain", "fork-join", "layered"} {
		for _, scale := range []int{4, 16} {
			g := benchShapeGraph(b, shape, scale)
			for _, m := range []core.Metric{core.NORM(), core.PURE(), core.THRES(1, 1.25), core.ADAPT(1.25)} {
				name := shape + "/" + sizeLabel(scale) + "/" + m.Name()
				b.Run(name, func(b *testing.B) {
					d := core.Distributor{Metric: m, Estimator: core.CCNE()}
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := d.Distribute(g, sys); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func sizeLabel(scale int) string {
	if scale <= 4 {
		return "small"
	}
	return "large"
}

// BenchmarkSchedulerDispatch measures the dispatch loop on a wide layered
// graph (many simultaneously-ready subtasks — the case the binary-heap
// ready queue targets), with and without scratch-buffer reuse.
func BenchmarkSchedulerDispatch(b *testing.B) {
	g, err := generator.Structured(generator.StructuredConfig{
		Workload: generator.Default(generator.MDET),
		Shape:    generator.ShapeLayered, Depth: 6, Width: 32,
	}, rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	sys := benchSystem(b, 8)
	res, err := core.Distributor{Metric: core.ADAPT(1.25), Estimator: core.CCNE()}.Distribute(g, sys)
	if err != nil {
		b.Fatal(err)
	}
	cfg := scheduler.Config{RespectRelease: true}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scheduler.Run(g, sys, res, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		sc := scheduler.NewScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sc.Run(g, sys, res, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch-preemptive", func(b *testing.B) {
		sc := scheduler.NewScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sc.RunPreemptive(g, sys, res, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSchedule measures one list-scheduling run per bus mode.
func BenchmarkSchedule(b *testing.B) {
	g := benchGraph(b)
	for _, contended := range []bool{false, true} {
		name := "contention-free"
		var opts []platform.Option
		if contended {
			name = "contended"
			opts = append(opts, platform.WithBusContention())
		}
		sys, err := platform.New(8, opts...)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Distributor{Metric: core.ADAPT(1.25), Estimator: core.CCNE()}.Distribute(g, sys)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			cfg := scheduler.Config{RespectRelease: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := scheduler.Run(g, sys, res, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipeline measures the whole distribute+schedule pipeline at the
// paper's extreme system sizes.
func BenchmarkPipeline(b *testing.B) {
	g := benchGraph(b)
	for _, n := range []int{2, 16} {
		sys := benchSystem(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			d := core.Distributor{Metric: core.ADAPT(1.25), Estimator: core.CCNE()}
			cfg := scheduler.Config{RespectRelease: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := d.Distribute(g, sys)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := scheduler.Run(g, sys, res, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	if n == 2 {
		return "2procs"
	}
	return "16procs"
}

// BenchmarkSection8Policy regenerates the dispatch-policy sweep.
func BenchmarkSection8Policy(b *testing.B) { benchFigure(b, experiment.PolicySweep) }

// BenchmarkSection8Preempt regenerates the run-time-model ablation.
func BenchmarkSection8Preempt(b *testing.B) { benchFigure(b, experiment.PreemptionAblation) }

// BenchmarkSection8Hetero regenerates the heterogeneous-speed sweep.
func BenchmarkSection8Hetero(b *testing.B) { benchFigure(b, experiment.HeteroSweep) }

// BenchmarkExtensionLocality regenerates the strict-locality fraction sweep.
func BenchmarkExtensionLocality(b *testing.B) { benchFigure(b, experiment.LocalitySweep) }

// BenchmarkExtensionOrder regenerates the distribution-first vs
// assignment-first comparison.
func BenchmarkExtensionOrder(b *testing.B) { benchFigure(b, experiment.OrderComparison) }

// BenchmarkExtensionChannels regenerates the real-time-channel estimation
// study.
func BenchmarkExtensionChannels(b *testing.B) { benchFigure(b, experiment.ChannelSweep) }

// BenchmarkExtensionAblation regenerates the AST ingredient ablation.
func BenchmarkExtensionAblation(b *testing.B) { benchFigure(b, experiment.AblationSweep) }

// BenchmarkExtensionImprove regenerates the iterative-improvement study.
func BenchmarkExtensionImprove(b *testing.B) { benchFigure(b, experiment.ImproveSweep) }

// BenchmarkSection8Apps regenerates the benchmark-application study.
func BenchmarkSection8Apps(b *testing.B) { benchFigure(b, experiment.AppSweep) }

// BenchmarkAblationOLRBasis regenerates the deadline-basis ablation.
func BenchmarkAblationOLRBasis(b *testing.B) { benchFigure(b, experiment.OLRBasisAblation) }

// BenchmarkAblationDispatch regenerates the dispatch-model ablation.
func BenchmarkAblationDispatch(b *testing.B) { benchFigure(b, experiment.DispatchAblation) }

// uncachedAssigner defeats the fingerprint cache by declaring its
// fingerprint unknown, which forces a fresh Assign at every system size.
type uncachedAssigner struct{ experiment.Assigner }

func (u uncachedAssigner) Fingerprint(*Graph, *System) ([]float64, bool) {
	return nil, false
}

// BenchmarkEngineFingerprintCache runs the same sweep twice: once with the
// cache effective (a platform-independent fingerprint means one Assign per
// graph) and once defeated (one Assign per graph and size). The hit
// variant must be measurably cheaper; each run also reports its measured
// cache hit rate.
func BenchmarkEngineFingerprintCache(b *testing.B) {
	asg := experiment.Slicing(core.PURE(), core.CCNE())
	run := func(b *testing.B, a experiment.Assigner) {
		b.Helper()
		rec := metrics.New()
		cfg := benchBase()
		cfg.Metrics = rec
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cfg.Run("bench", a); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(rec.Snapshot().CacheHitRate(), "hit-rate")
	}
	b.Run("hit", func(b *testing.B) { run(b, asg) })
	b.Run("miss", func(b *testing.B) { run(b, uncachedAssigner{asg}) })
}
