#!/usr/bin/env python3
"""Compare two `go test -bench` output files and fail on a geomean regression.

Usage: perfgate.py BASE.txt HEAD.txt [--limit 1.10]

Both files hold standard `go test -bench` output (any -count; repeated
measurements of one benchmark are averaged before comparison). Benchmarks
present in only one file are reported and skipped. The gate fails when the
geometric mean of head/base ns-per-op ratios over the shared benchmarks
exceeds the limit (default 1.10 = 10% slower), and also prints the worst
individual offenders so a localized regression hiding inside a healthy
geomean is still visible in the log.
"""

import argparse
import math
import re
import sys
from collections import defaultdict

BENCH_RE = re.compile(r"^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op")


def parse(path):
    runs = defaultdict(list)
    with open(path) as f:
        for line in f:
            m = BENCH_RE.match(line)
            if m:
                runs[m.group(1)].append(float(m.group(2)))
    return {name: sum(v) / len(v) for name, v in runs.items()}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("base")
    ap.add_argument("head")
    ap.add_argument("--limit", type=float, default=1.10)
    args = ap.parse_args()

    base, head = parse(args.base), parse(args.head)
    shared = sorted(set(base) & set(head))
    if not shared:
        sys.exit("perfgate: no shared benchmarks between base and head")
    for name in sorted(set(base) ^ set(head)):
        where = "base" if name in base else "head"
        print(f"perfgate: {name} only in {where}, skipped")

    ratios = {name: head[name] / base[name] for name in shared}
    geomean = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))

    print(f"perfgate: {len(shared)} benchmarks, geomean head/base = {geomean:.3f} "
          f"(limit {args.limit:.2f})")
    for name, r in sorted(ratios.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {r:6.3f}x  {name}  {base[name]:12.1f} -> {head[name]:12.1f} ns/op")

    if geomean > args.limit:
        sys.exit(f"perfgate: FAIL geomean regression {geomean:.3f} > {args.limit:.2f}")
    print("perfgate: OK")


if __name__ == "__main__":
    main()
