package deadlinedist

import (
	"math"
	"testing"
)

// TestGoldenPipeline pins the exact outputs of the full pipeline for the
// canonical workload (seed 1997, batch index 0, MDET, 4 processors,
// time-driven dispatch). Everything in this repository is deterministic;
// any diff here means an algorithmic change, intended or not. Update the
// constants only when DESIGN.md records a deliberate model change.
func TestGoldenPipeline(t *testing.T) {
	src := NewRandomSource(1997)
	g, err := RandomGraph(DefaultWorkload(MDET), src.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSubtasks() != 53 || g.NumMessages() != 111 || g.Depth() != 8 {
		t.Fatalf("workload drifted: %d subtasks, %d messages, depth %d",
			g.NumSubtasks(), g.NumMessages(), g.Depth())
	}
	if math.Abs(g.TotalWork()-1023.834392) > 1e-5 {
		t.Fatalf("total work drifted: %v", g.TotalWork())
	}
	if math.Abs(g.AvgParallelism()-5.092304) > 1e-5 {
		t.Fatalf("parallelism drifted: %v", g.AvgParallelism())
	}

	sys, err := NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SchedulerConfig{RespectRelease: true}

	golden := []struct {
		metric                       Metric
		paths                        int
		minLaxity, makespan          float64
		maxLateness, preemptLateness float64
	}{
		{NORM(), 65, 94.056207, 1363.097168, -94.056207, -94.056207},
		{PURE(), 65, 166.837043, 1368.914545, -134.183819, -135.554924},
		{THRES(1, 1.25), 65, 149.679935, 1360.250273, -133.862842, -133.862842},
		{ADAPT(1.25), 65, 144.994742, 1358.003584, -133.219914, -133.219914},
	}
	for _, want := range golden {
		t.Run(want.metric.Name(), func(t *testing.T) {
			res, err := Distribute(g, sys, want.metric, CCNE())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Paths) != want.paths {
				t.Errorf("paths = %d, want %d", len(res.Paths), want.paths)
			}
			if got := res.MinLaxity(g); math.Abs(got-want.minLaxity) > 1e-5 {
				t.Errorf("min laxity = %v, want %v", got, want.minLaxity)
			}
			sched, err := Schedule(g, sys, res, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sched.Makespan-want.makespan) > 1e-5 {
				t.Errorf("makespan = %v, want %v", sched.Makespan, want.makespan)
			}
			if got := sched.MaxLateness(g, res); math.Abs(got-want.maxLateness) > 1e-5 {
				t.Errorf("max lateness = %v, want %v", got, want.maxLateness)
			}
			pre, err := SchedulePreemptive(g, sys, res, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := pre.MaxLateness(g, res); math.Abs(got-want.preemptLateness) > 1e-5 {
				t.Errorf("preemptive max lateness = %v, want %v", got, want.preemptLateness)
			}
			if err := ValidateSchedule(g, sys, res, sched, cfg); err != nil {
				t.Errorf("validate: %v", err)
			}
			if err := ValidatePreemptiveSchedule(g, sys, res, pre, cfg); err != nil {
				t.Errorf("validate preemptive: %v", err)
			}
		})
	}
}

// TestGoldenNORMBindsAtMinLaxity documents a structural identity visible
// in the golden run: under the time-driven model NORM's maximum lateness
// equals minus its minimum laxity — the subtask with the smallest window
// slack (a short subtask, NORM's known weakness) binds without suffering
// any contention delay at all.
func TestGoldenNORMBindsAtMinLaxity(t *testing.T) {
	src := NewRandomSource(1997)
	g, err := RandomGraph(DefaultWorkload(MDET), src.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distribute(g, sys, NORM(), CCNE())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Schedule(g, sys, res, SchedulerConfig{RespectRelease: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sched.MaxLateness(g, res)+res.MinLaxity(g)) > 1e-6 {
		t.Errorf("NORM max lateness %v != -min laxity %v",
			sched.MaxLateness(g, res), res.MinLaxity(g))
	}
}
