package deadlinedist

import (
	"strings"
	"testing"
)

// TestPublicPipeline drives the full paper pipeline through the facade:
// build a graph, distribute deadlines, schedule, measure lateness.
func TestPublicPipeline(t *testing.T) {
	b := NewGraphBuilder()
	sense := b.AddSubtask("sense", 10)
	plan := b.AddSubtask("plan", 20)
	act := b.AddSubtask("act", 10)
	b.Connect(sense, plan, 5)
	b.Connect(plan, act, 5)
	b.SetEndToEnd(act, 120)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	sys, err := NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distribute(g, sys, ADAPT(1.25), CCNE())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Schedule(g, sys, res, SchedulerConfig{RespectRelease: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchedule(g, sys, res, sched, SchedulerConfig{RespectRelease: true}); err != nil {
		t.Fatal(err)
	}
	if l := sched.MaxLateness(g, res); l > 0 {
		t.Errorf("feasible pipeline has positive max lateness %v", l)
	}
	if out := Gantt(g, sys, sched, 40); !strings.Contains(out, "P0") {
		t.Errorf("Gantt output malformed:\n%s", out)
	}
}

func TestPublicGenerators(t *testing.T) {
	src := NewRandomSource(7)
	g, err := RandomGraph(DefaultWorkload(MDET), src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSubtasks() < 40 || g.NumSubtasks() > 60 {
		t.Errorf("random graph has %d subtasks", g.NumSubtasks())
	}
	sg, err := StructuredGraph(StructuredConfig{
		Workload: DefaultWorkload(LDET),
		Shape:    ShapeForkJoin,
		Depth:    3,
		Width:    4,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumSubtasks() != 16 {
		t.Errorf("fork-join graph has %d subtasks, want 16", sg.NumSubtasks())
	}
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeGraph(data); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBaselines(t *testing.T) {
	b := NewGraphBuilder()
	x := b.AddSubtask("x", 10)
	y := b.AddSubtask("y", 10)
	b.Connect(x, y, 1)
	b.SetEndToEnd(y, 60)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{UltimateDeadline(), EffectiveDeadline(), EqualSlack(), EqualFlexibility()} {
		res, err := s.Assign(g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Absolute[y] > 60+1e-9 {
			t.Errorf("%s: output deadline %v exceeds end-to-end 60", s.Name(), res.Absolute[y])
		}
	}
}

func TestPublicExperiment(t *testing.T) {
	cfg := DefaultExperiment(MDET)
	cfg.Graphs = 4
	cfg.Sizes = []int{2, 8}
	table, err := cfg.Run("facade experiment", Slicing(PURE(), CCNE()), Baseline(EqualFlexibility()))
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Curves) != 2 {
		t.Fatalf("curves = %d", len(table.Curves))
	}
	if !strings.Contains(table.String(), "PURE/CCNE") {
		t.Error("table missing slicing curve")
	}
}

func TestPublicFigureRegistry(t *testing.T) {
	figs := Figures()
	for _, k := range FigureOrder() {
		if figs[k] == nil {
			t.Errorf("missing figure %q", k)
		}
	}
}

func TestPublicTopologies(t *testing.T) {
	sys, err := NewSystem(4,
		WithTopology(Ring{NumProcs: 4, PerItemCost: 1}),
		WithSpeeds([]float64{1, 1, 2, 2}),
		WithBusContention(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Topology().Name() != "ring" || !sys.BusContention() || sys.Homogeneous() {
		t.Error("options not applied through facade")
	}
	for _, topo := range []Topology{SharedBus{PerItemCost: 1}, FullMesh{PerItemCost: 1}, Star{PerItemCost: 1}} {
		if topo.CommCost(1, 1, 10) != 0 {
			t.Errorf("%s: co-located cost non-zero", topo.Name())
		}
	}
}

func TestPublicMultihop(t *testing.T) {
	b := NewGraphBuilder()
	u := b.AddSubtask("u", 10)
	v := b.AddSubtask("v", 10)
	b.Connect(u, v, 5)
	b.Pin(u, 0)
	b.Pin(v, 2)
	b.SetEndToEnd(v, 200)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := RingNetwork(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distribute(g, sys, ADAPT(1.25), CCHOP(net))
	if err != nil {
		t.Fatal(err)
	}
	cfg := SchedulerConfig{RespectRelease: true}
	ms, err := ScheduleMultihop(g, sys, net, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMultihopSchedule(g, sys, net, res, ms, cfg); err != nil {
		t.Fatal(err)
	}
	if len(ms.Hops) != 1 {
		t.Fatalf("expected one cross-processor message with hops, got %d", len(ms.Hops))
	}
}

func TestPublicFeasibility(t *testing.T) {
	b := NewGraphBuilder()
	a := b.AddSubtask("a", 50)
	c := b.AddSubtask("c", 50)
	b.Connect(a, c, 1)
	b.SetEndToEnd(c, 60)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	f := CheckFeasibility(g, sys)
	if f.Feasible() {
		t.Fatal("critical-path-infeasible workload reported feasible")
	}
}

func TestPublicFacadeCompleteness(t *testing.T) {
	// Exercise the remaining facade constructors end to end.
	src := NewRandomSource(5)
	g, err := RandomGraph(DefaultWorkload(HDET), src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []CommEstimator{CCAA(), CCEXP()} {
		if _, err := Distribute(g, sys, ADAPTAblation(1.25, true, false), e); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
	}
	for name, mk := range map[string]func(int, float64) (*Network, error){
		"bus": BusNetwork, "star": StarNetwork, "mesh": MeshNetwork,
	} {
		net, err := mk(3, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if net.NumProcs() != 3 {
			t.Fatalf("%s: %d procs", name, net.NumProcs())
		}
	}
	a, err := ClusterAssignment(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := ApplyAssignment(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Distribute(pinned, sys, PURE(), CCKnown(a)); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPeriodicHelpers(t *testing.T) {
	b := NewGraphBuilder()
	x := b.AddSubtask("x", 4)
	y := b.AddSubtask("y", 4)
	b.Connect(x, y, 1)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	tasks := []PeriodicTask{{Name: "t", Graph: g, Period: 10}, {Name: "u", Graph: g, Period: 15}}
	h, err := Hyperperiod(tasks)
	if err != nil || h != 30 {
		t.Fatalf("Hyperperiod = %d, %v; want 30", h, err)
	}
	u, err := PeriodicUtilization(tasks)
	if err != nil {
		t.Fatal(err)
	}
	want := 8.0/10.0 + 8.0/15.0
	if u < want-1e-9 || u > want+1e-9 {
		t.Fatalf("utilization = %v, want %v", u, want)
	}
}

func TestPublicImprove(t *testing.T) {
	b := NewGraphBuilder()
	x1 := b.AddSubtask("x1", 10)
	x2 := b.AddSubtask("x2", 10)
	b.Connect(x1, x2, 1)
	b.SetEndToEnd(x2, 60)
	blocker := b.AddSubtask("blocker", 15)
	b.SetEndToEnd(blocker, 18)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distribute(g, sys, PURE(), CCNE())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Improve(g, sys, res, ImproveConfig{Iterations: 8, Scheduler: SchedulerConfig{RespectRelease: true}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Best > out.Initial {
		t.Fatalf("improvement degraded: %v -> %v", out.Initial, out.Best)
	}
}

func TestPublicBenchmarkApps(t *testing.T) {
	appList := BenchmarkApps()
	if len(appList) != 3 {
		t.Fatalf("got %d benchmark apps", len(appList))
	}
	sys, err := NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range appList {
		g, err := app.Build(NewRandomSource(1))
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if !CheckFeasibility(g, sys).Feasible() {
			t.Errorf("%s infeasible on 4 processors", app.Name)
		}
	}
}
