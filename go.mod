module deadlinedist

go 1.22
