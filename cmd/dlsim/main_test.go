package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleGraph = `{
  "subtasks": [
    {"name": "a", "cost": 10},
    {"name": "b", "cost": 20},
    {"name": "c", "cost": 10, "endToEnd": 120}
  ],
  "arcs": [
    {"from": "a", "to": "b", "size": 5},
    {"from": "b", "to": "c", "size": 5}
  ]
}`

func TestRunFromStdin(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-procs", "2", "-metric", "ADAPT"}, strings.NewReader(sampleGraph), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"3 subtasks", "2 processors", "metric ADAPT", "max lateness", "P0", "P1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(path, []byte(sampleGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", path, "-windows", "-gantt=false"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "subtask windows") {
		t.Errorf("windows not printed:\n%s", out.String())
	}
	if strings.Contains(out.String(), "makespan %!") {
		t.Errorf("formatting bug:\n%s", out.String())
	}
}

func TestRunAllMetricsAndEstimators(t *testing.T) {
	for _, m := range []string{"NORM", "PURE", "THRES", "ADAPT"} {
		for _, e := range []string{"CCNE", "CCAA", "CCEXP"} {
			var out bytes.Buffer
			err := run(context.Background(), []string{"-metric", m, "-estimator", e, "-gantt=false"},
				strings.NewReader(sampleGraph), &out)
			if err != nil {
				t.Fatalf("%s/%s: %v", m, e, err)
			}
		}
	}
}

func TestRunContended(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-contended", "-gantt=false"}, strings.NewReader(sampleGraph), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "contention=true") {
		t.Errorf("contention not reported:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	t.Run("bad metric", func(t *testing.T) {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-metric", "XYZ"}, strings.NewReader(sampleGraph), &out); err == nil {
			t.Fatal("bad metric accepted")
		}
	})
	t.Run("bad estimator", func(t *testing.T) {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-estimator", "XYZ"}, strings.NewReader(sampleGraph), &out); err == nil {
			t.Fatal("bad estimator accepted")
		}
	})
	t.Run("bad graph", func(t *testing.T) {
		var out bytes.Buffer
		if err := run(context.Background(), nil, strings.NewReader("{"), &out); err == nil {
			t.Fatal("bad graph accepted")
		}
	})
	t.Run("missing file", func(t *testing.T) {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-in", "/nonexistent/g.json"}, strings.NewReader(""), &out); err == nil {
			t.Fatal("missing file accepted")
		}
	})
	t.Run("bad procs", func(t *testing.T) {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-procs", "0"}, strings.NewReader(sampleGraph), &out); err == nil {
			t.Fatal("zero processors accepted")
		}
	})
}

func TestRunPolicies(t *testing.T) {
	for _, p := range []string{"EDF", "llf", "FIFO", "hlf"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-policy", p, "-gantt=false"}, strings.NewReader(sampleGraph), &out); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-policy", "nope"}, strings.NewReader(sampleGraph), &out); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunPreemptive(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-preempt", "-gantt=false"}, strings.NewReader(sampleGraph), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "preemptions") {
		t.Errorf("preemption count not reported:\n%s", out.String())
	}
}

func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-trace", path, "-gantt=false"}, strings.NewReader(sampleGraph), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(data)), "[") {
		t.Errorf("trace not a JSON array: %q", string(data)[:20])
	}
	if !strings.Contains(out.String(), "trace written") {
		t.Error("trace path not reported")
	}
}

func TestRunStats(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-procs", "2", "-stats", "-gantt=false"}, strings.NewReader(sampleGraph), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stage", "assign", "schedule", "measure"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-procs", "2", "-gantt=false", "-cpuprofile", path}, strings.NewReader(sampleGraph), &out)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile missing or empty (err=%v)", err)
	}
}

func TestRunBadPprofAddr(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-pprof", "not-an-addr"}, strings.NewReader(sampleGraph), &out); err == nil {
		t.Fatal("bad pprof address accepted")
	}
}
