// Command dlsim runs the full pipeline for one task graph: distribute
// end-to-end deadlines with a chosen metric, schedule on a chosen platform,
// and print the windows, a Gantt chart and the lateness measures.
//
// Usage:
//
//	dlgen -seed 7 | dlsim -procs 4 -metric ADAPT
//	dlsim -in graph.json -procs 8 -metric PURE -estimator CCAA -gantt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"deadlinedist/internal/core"
	"deadlinedist/internal/metrics"
	"deadlinedist/internal/platform"
	"deadlinedist/internal/profiling"
	"deadlinedist/internal/scheduler"
	"deadlinedist/internal/taskgraph"
	"deadlinedist/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, os.Args[1:], os.Stdin, os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("dlsim", flag.ContinueOnError)
	var (
		in         = fs.String("in", "-", "task graph JSON file ('-' for stdin)")
		procs      = fs.Int("procs", 4, "number of processors")
		metric     = fs.String("metric", "ADAPT", "deadline metric: NORM, PURE, THRES or ADAPT")
		estimator  = fs.String("estimator", "CCNE", "communication estimator: CCNE, CCAA or CCEXP")
		delta      = fs.Float64("delta", 1.0, "THRES surplus factor")
		thres      = fs.Float64("cthres", 1.25, "THRES/ADAPT threshold as a multiple of MET")
		respect    = fs.Bool("respect", true, "time-driven dispatch (respect release times)")
		policy     = fs.String("policy", "EDF", "dispatch policy: EDF, LLF, FIFO or HLF")
		preempt    = fs.Bool("preempt", false, "re-simulate under preemptive EDF")
		contended  = fs.Bool("contended", false, "serialize messages on a contended bus")
		gantt      = fs.Bool("gantt", true, "print an ASCII Gantt chart")
		tracePath  = fs.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing)")
		windows    = fs.Bool("windows", false, "print per-subtask windows")
		stats      = fs.Bool("stats", false, "print per-stage pipeline timings")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	prof, err := profiling.Start(profiling.Options{
		CPUProfile: *cpuProfile, MemProfile: *memProfile, PprofAddr: *pprofAddr,
	})
	if err != nil {
		return err
	}
	defer prof.Stop()
	if addr := prof.Addr(); addr != "" {
		fmt.Fprintf(out, "pprof server on http://%s/debug/pprof/\n", addr)
	}
	rec := (*metrics.Recorder)(nil)
	if *stats {
		rec = metrics.New()
	}

	data, err := readInput(*in, stdin)
	if err != nil {
		return err
	}
	g, err := taskgraph.Decode(data)
	if err != nil {
		return err
	}

	var opts []platform.Option
	if *contended {
		opts = append(opts, platform.WithBusContention())
	}
	sys, err := platform.New(*procs, opts...)
	if err != nil {
		return err
	}

	m, err := parseMetric(*metric, *delta, *thres)
	if err != nil {
		return err
	}
	e, err := parseEstimator(*estimator)
	if err != nil {
		return err
	}

	// The pipeline stages run inline; a signal arriving between stages
	// aborts before the next one starts.
	if err := ctx.Err(); err != nil {
		return err
	}
	assignStart := time.Now()
	res, err := core.Distributor{Metric: m, Estimator: e}.Distribute(g, sys)
	if err != nil {
		return err
	}
	rec.Observe(metrics.StageAssign, time.Since(assignStart))
	rec.AddSearch(res.Search.Iterations, res.Search.StartsExamined, res.Search.DPRuns, res.Search.CacheReuses, res.Search.DeltaReuses)
	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	cfg := scheduler.Config{RespectRelease: *respect, Policy: pol}
	if err := ctx.Err(); err != nil {
		return err
	}
	schedStart := time.Now()
	var sched *scheduler.Schedule
	if *preempt {
		if sched, err = scheduler.RunPreemptive(g, sys, res, cfg); err != nil {
			return err
		}
		if err := scheduler.ValidatePreemptive(g, sys, res, sched, cfg); err != nil {
			return fmt.Errorf("schedule validation: %w", err)
		}
	} else {
		if sched, err = scheduler.Run(g, sys, res, cfg); err != nil {
			return err
		}
		if err := scheduler.Validate(g, sys, res, sched, cfg); err != nil {
			return fmt.Errorf("schedule validation: %w", err)
		}
	}
	rec.Observe(metrics.StageSchedule, time.Since(schedStart))

	fmt.Fprintf(out, "graph: %d subtasks, %d messages, depth %d, parallelism %.2f, workload %.1f\n",
		g.NumSubtasks(), g.NumMessages(), g.Depth(), g.AvgParallelism(), g.TotalWork())
	fmt.Fprintf(out, "platform: %d processors, %s topology, contention=%v\n",
		sys.NumProcs(), sys.Topology().Name(), sys.BusContention())
	fmt.Fprintf(out, "distribution: metric %s, estimator %s, %d critical paths, min laxity %.2f\n",
		res.Metric, res.Estimator, len(res.Paths), res.MinLaxity(g))

	if *windows {
		fmt.Fprintln(out, "\nsubtask windows (release / relative deadline / absolute deadline):")
		nodes := g.Nodes()
		sort.Slice(nodes, func(i, j int) bool { return res.Release[nodes[i].ID] < res.Release[nodes[j].ID] })
		for _, n := range nodes {
			if n.Kind != taskgraph.KindSubtask {
				continue
			}
			fmt.Fprintf(out, "  %-8s c=%6.2f  r=%8.2f  d=%8.2f  D=%8.2f\n",
				n.Name, n.Cost, res.Release[n.ID], res.Relative[n.ID], res.Absolute[n.ID])
		}
	}

	fmt.Fprintf(out, "\nschedule: policy %s, makespan %.2f, utilization %.1f%%", cfg.Policy, sched.Makespan, 100*sched.Utilization(g, sys))
	if *preempt {
		fmt.Fprintf(out, ", %d preemptions", sched.Preemptions(g))
	}
	fmt.Fprintln(out)
	measureStart := time.Now()
	maxLate, missed, e2eLate := sched.MaxLateness(g, res), sched.MissedDeadlines(g, res), sched.EndToEndLateness(g)
	rec.Observe(metrics.StageMeasure, time.Since(measureStart))
	fmt.Fprintf(out, "max lateness %.2f, missed windows %d, end-to-end lateness %.2f\n",
		maxLate, missed, e2eLate)
	if *gantt {
		fmt.Fprintln(out)
		io.WriteString(out, scheduler.Gantt(g, sys, sched, 72))
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Write(f, g, res, sched); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace written to %s\n", *tracePath)
	}
	if *stats {
		fmt.Fprintf(out, "\n%s\n", rec.Snapshot().String())
	}
	return prof.Stop()
}

func readInput(path string, stdin io.Reader) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(stdin)
	}
	return os.ReadFile(path)
}

func parseMetric(name string, delta, thres float64) (core.Metric, error) {
	switch strings.ToUpper(name) {
	case "NORM":
		return core.NORM(), nil
	case "PURE":
		return core.PURE(), nil
	case "THRES":
		return core.THRES(delta, thres), nil
	case "ADAPT":
		return core.ADAPT(thres), nil
	default:
		return nil, fmt.Errorf("unknown metric %q", name)
	}
}

func parsePolicy(name string) (scheduler.Policy, error) {
	for _, p := range scheduler.Policies() {
		if strings.EqualFold(p.String(), name) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", name)
}

func parseEstimator(name string) (core.CommEstimator, error) {
	switch strings.ToUpper(name) {
	case "CCNE":
		return core.CCNE(), nil
	case "CCAA":
		return core.CCAA(), nil
	case "CCEXP":
		return core.CCEXP(), nil
	default:
		return nil, fmt.Errorf("unknown estimator %q", name)
	}
}
