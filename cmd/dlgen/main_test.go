package main

import (
	"bytes"
	"strings"
	"testing"

	"deadlinedist/internal/taskgraph"
)

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	g, err := taskgraph.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("output is not a valid task graph: %v", err)
	}
	if n := g.NumSubtasks(); n < 40 || n > 60 {
		t.Errorf("generated %d subtasks, want the paper's 40-60", n)
	}
}

func TestRunDOTOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-seed", "3", "-format", "dot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "digraph") {
		t.Errorf("DOT output malformed: %q", buf.String()[:20])
	}
}

func TestRunStructuredShapes(t *testing.T) {
	for _, shape := range []string{"chain", "out-tree", "in-tree", "fork-join", "layered"} {
		var buf bytes.Buffer
		if err := run([]string{"-shape", shape, "-depth", "3", "-width", "2"}, &buf); err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if _, err := taskgraph.Decode(buf.Bytes()); err != nil {
			t.Fatalf("%s: invalid output: %v", shape, err)
		}
	}
}

func TestRunScenarios(t *testing.T) {
	for _, sc := range []string{"LDET", "mdet", "HDET"} {
		var buf bytes.Buffer
		if err := run([]string{"-scenario", sc}, &buf); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-scenario", "XXX"},
		{"-shape", "pentagon"},
		{"-format", "xml"},
		{"-met", "-5"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunPinnedFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-pinned", "1", "-pinprocs", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"pinned"`) {
		t.Error("no pinned subtasks in output despite -pinned 1")
	}
}

func TestRunOLRBasisFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-olrbasis", "path", "-seed", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := run([]string{"-olrbasis", "total", "-seed", "4"}, &buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() == buf2.String() {
		t.Error("OLR basis had no effect on deadlines")
	}
	var buf3 bytes.Buffer
	if err := run([]string{"-olrbasis", "zigzag"}, &buf3); err == nil {
		t.Error("unknown basis accepted")
	}
}
