// Command dlgen generates task-graph workloads in the paper's Section 5.2
// style (or structured shapes) and writes them as JSON or Graphviz DOT.
//
// Usage:
//
//	dlgen -seed 7 > graph.json
//	dlgen -scenario HDET -format dot | dot -Tpng > graph.png
//	dlgen -shape fork-join -depth 6 -width 4 > fj.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"deadlinedist/internal/generator"
	"deadlinedist/internal/rng"
	"deadlinedist/internal/taskgraph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dlgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dlgen", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "random seed")
		scenario = fs.String("scenario", "MDET", "execution-time scenario: LDET, MDET or HDET")
		shape    = fs.String("shape", "random", "graph family: random, chain, out-tree, in-tree, fork-join, layered")
		depth    = fs.Int("depth", 6, "structured shapes: subtask levels")
		width    = fs.Int("width", 3, "structured shapes: branching / section width")
		ccr      = fs.Float64("ccr", 1.0, "communication-to-computation cost ratio")
		olr      = fs.Float64("olr", 1.5, "overall laxity ratio for end-to-end deadlines")
		met      = fs.Float64("met", 20, "mean subtask execution time")
		pinned   = fs.Float64("pinned", 0, "fraction of boundary subtasks with strict locality constraints")
		pinprocs = fs.Int("pinprocs", 2, "processor pool pinned subtasks draw from")
		basis    = fs.String("olrbasis", "total", "end-to-end deadline basis: total (workload) or path (longest path)")
		format   = fs.String("format", "json", "output format: json or dot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	wcfg := generator.Default(sc)
	wcfg.CCR = *ccr
	wcfg.OLR = *olr
	wcfg.MET = *met
	wcfg.PinnedFraction = *pinned
	wcfg.PinnedProcs = *pinprocs
	switch *basis {
	case "total":
		wcfg.Basis = generator.OLRTotalWork
	case "path":
		wcfg.Basis = generator.OLRLongestPath
	default:
		return fmt.Errorf("unknown OLR basis %q (want total or path)", *basis)
	}

	g, err := generate(*shape, wcfg, *depth, *width, rng.New(*seed))
	if err != nil {
		return err
	}

	switch *format {
	case "json":
		data, err := g.MarshalJSON()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(out, string(data))
		return err
	case "dot":
		_, err := io.WriteString(out, g.DOT())
		return err
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func generate(shape string, wcfg generator.Config, depth, width int, src *rng.Source) (*taskgraph.Graph, error) {
	if shape == "random" {
		return generator.Random(wcfg, src)
	}
	for _, s := range generator.Shapes() {
		if s.String() == shape {
			return generator.Structured(generator.StructuredConfig{
				Workload: wcfg,
				Shape:    s,
				Depth:    depth,
				Width:    width,
			}, src)
		}
	}
	return nil, fmt.Errorf("unknown shape %q", shape)
}

func parseScenario(name string) (generator.Scenario, error) {
	for _, s := range generator.Scenarios() {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	return generator.Scenario{}, fmt.Errorf("unknown scenario %q (want LDET, MDET or HDET)", name)
}
