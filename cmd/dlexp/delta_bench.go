package main

import (
	"time"

	"deadlinedist/internal/core"
	"deadlinedist/internal/generator"
	"deadlinedist/internal/metrics"
	"deadlinedist/internal/platform"
	"deadlinedist/internal/rng"
	"deadlinedist/internal/taskgraph"
)

// measureDelta is the changed-exec-times workload behind -bench-delta: the
// paper's default random graph (40–60 subtasks, 4 processors) with one
// mid-graph subtask's execution time drifting +20% between re-analyses. It
// compares a cold critical-path search per round (DistributeScratch)
// against the delta entry point (DistributeDelta) on alternating
// base/drifted graphs, plus the identical-rerun upper bound, mirroring
// BenchmarkDistributeDelta so the checked-in BENCH_core.json carries the
// same falsifiable numbers CI measures. PURE's per-node virtual costs let
// a localized drift replay most of the search; ADAPT inflates against
// graph-wide statistics, so any drift legitimately invalidates every
// evaluation and the delta path reports its honest overhead instead.
func measureDelta(iters int) ([]metrics.DeltaBench, error) {
	base, err := generator.Random(generator.Default(generator.MDET), rng.New(42))
	if err != nil {
		return nil, err
	}
	sys, err := platform.New(4)
	if err != nil {
		return nil, err
	}
	var subs []taskgraph.NodeID
	for _, n := range base.Nodes() {
		if n.Kind == taskgraph.KindSubtask {
			subs = append(subs, n.ID)
		}
	}
	target := subs[len(subs)*3/10]
	drift := base.Clone()
	if err := drift.SetCost(target, base.Node(target).Cost*1.2); err != nil {
		return nil, err
	}
	pick := func(i int) *taskgraph.Graph {
		if i%2 == 1 {
			return drift
		}
		return base
	}

	var out []metrics.DeltaBench
	for _, m := range []core.Metric{core.PURE(), core.ADAPT(1.25)} {
		d := core.Distributor{Metric: m, Estimator: core.CCNE()}
		db := metrics.DeltaBench{Metric: m.Name()}

		sc := core.NewScratch()
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := d.DistributeScratch(pick(i), sys, nil, sc); err != nil {
				return nil, err
			}
		}
		db.ColdNsOp = float64(time.Since(t0).Nanoseconds()) / float64(iters)

		sc = core.NewScratch()
		var reused, examined int
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			res, err := d.DistributeDelta(pick(i), sys, nil, sc)
			if err != nil {
				return nil, err
			}
			reused += res.Search.DeltaReuses
			examined += res.Search.StartsExamined
		}
		db.DriftNsOp = float64(time.Since(t0).Nanoseconds()) / float64(iters)
		if examined > 0 {
			db.DeltaReuseRate = float64(reused) / float64(examined)
		}
		if db.DriftNsOp > 0 {
			db.DriftSpeedup = db.ColdNsOp / db.DriftNsOp
		}

		sc = core.NewScratch()
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := d.DistributeDelta(base, sys, nil, sc); err != nil {
				return nil, err
			}
		}
		db.IdenticalNsOp = float64(time.Since(t0).Nanoseconds()) / float64(iters)

		out = append(out, db)
	}
	return out, nil
}
