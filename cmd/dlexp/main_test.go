package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"deadlinedist/internal/experiment"
	"deadlinedist/internal/metrics"
)

func TestParseSizesRange(t *testing.T) {
	got, err := parseSizes("2-5")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 3, 4, 5}) {
		t.Fatalf("parseSizes(2-5) = %v", got)
	}
}

func TestParseSizesList(t *testing.T) {
	got, err := parseSizes("2, 8,16")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 8, 16}) {
		t.Fatalf("parseSizes list = %v", got)
	}
}

func TestParseSizesSingle(t *testing.T) {
	got, err := parseSizes("4")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("parseSizes(4) = %v", got)
	}
}

func TestParseSizesErrors(t *testing.T) {
	for _, bad := range []string{"", "x", "5-2", "0-3", "2,x", "-1"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("MDET CCR=1.5"); got != "MDET_CCR_1_5" {
		t.Fatalf("sanitize = %q", got)
	}
}

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-figure", "5", "-graphs", "3", "-sizes", "2,8"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figure 5", "PURE/CCNE", "ADAPT/CCNE", "LDET", "MDET", "HDET"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWithPlotAndCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-figure", "baselines", "-graphs", "2", "-sizes", "2,4", "-plot", "-csv", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("wrote %d CSV files, want 1", len(files))
	}
	data, err := os.ReadFile(filepath.Join(dir, files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "size,") {
		t.Errorf("CSV malformed: %q", string(data)[:20])
	}
	if !strings.Contains(buf.String(), "|") {
		t.Error("plot not rendered")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-figure", "nope", "-graphs", "2", "-sizes", "2"}, &buf); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-sizes", "zzz"}, &buf); err == nil {
		t.Fatal("bad sizes accepted")
	}
}

func TestRunWritesReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.md")
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-figure", "5", "-graphs", "3", "-sizes", "2,8", "-report", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"# Reproduction report", "## Figure 5", "ADAPT/CCNE", "Paired per-graph difference"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunVerifyMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "claims.md")
	var buf bytes.Buffer
	// Tiny batch: the claim machinery must run end to end; statistical
	// verdicts at this scale are not asserted.
	err := run(context.Background(), []string{"-verify", "-graphs", "2", "-report", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "claims reproduced") {
		t.Errorf("verify summary missing:\n%s", out)
	}
	for _, id := range []string{"C1", "C5", "C10"} {
		if !strings.Contains(out, id+" —") {
			t.Errorf("claim %s missing from output", id)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "## Claims:") {
		t.Error("report missing claims section")
	}
}

func TestRunStatsAndBenchJSON(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "BENCH_experiment.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-figure", "2", "-graphs", "2", "-sizes", "2,4",
		"-stats", "-bench-json", "-bench-out", benchPath}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stage", "assign", "schedule", "fingerprint cache", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q", want)
		}
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("bench snapshot not written: %v", err)
	}
	var bench metrics.Bench
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("bench snapshot not valid JSON: %v", err)
	}
	if bench.Name != "experiment" || bench.Graphs == 0 || bench.GraphsPerSec <= 0 {
		t.Errorf("bench snapshot incomplete: %+v", bench)
	}
	if bench.CacheHits+bench.CacheMisses == 0 {
		t.Error("bench snapshot has no cache traffic")
	}
}

func TestRunProfilesAndPprof(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-figure", "2", "-graphs", "2", "-sizes", "2",
		"-cpuprofile", cpu, "-memprofile", mem, "-pprof", "127.0.0.1:0"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", path, err)
		}
	}
	if !strings.Contains(buf.String(), "pprof server on http://127.0.0.1:") {
		t.Errorf("pprof address not announced:\n%s", buf.String())
	}
}

func TestParseFaults(t *testing.T) {
	plan, err := parseFaults("panic=0.1,hang=0.2,err=0.3,seed=9,hangms=50")
	if err != nil {
		t.Fatal(err)
	}
	if plan.PanicRate != 0.1 || plan.HangRate != 0.2 || plan.ErrorRate != 0.3 {
		t.Errorf("rates = %v/%v/%v", plan.PanicRate, plan.HangRate, plan.ErrorRate)
	}
	if plan.Seed != 9 {
		t.Errorf("seed = %d, want 9", plan.Seed)
	}
	if plan.HangDuration != 50*time.Millisecond {
		t.Errorf("hang duration = %v, want 50ms", plan.HangDuration)
	}
	for _, bad := range []string{"", "panic", "panic=2", "panic=-0.1", "seed=x", "hangms=-1", "nope=1"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("parseFaults(%q) accepted", bad)
		}
	}
}

// readCSVs returns the contents of every CSV in dir keyed by file name.
func readCSVs(t *testing.T, dir string) map[string]string {
	t.Helper()
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(files))
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[f.Name()] = string(data)
	}
	return out
}

// TestRunChaosProducesIdenticalCSVs is the CLI-level chaos acceptance test:
// a run with faults injected at >10% rates writes CSV tables byte-identical
// to a clean run's.
func TestRunChaosProducesIdenticalCSVs(t *testing.T) {
	args := []string{"-figure", "baselines", "-graphs", "4", "-sizes", "2,4"}
	cleanDir, chaosDir := t.TempDir(), t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), append(args, "-csv", cleanDir), &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	chaosArgs := append(args, "-csv", chaosDir,
		"-faults", "panic=0.2,err=0.2,seed=3", "-retries", "3")
	if err := run(context.Background(), chaosArgs, &buf); err != nil {
		t.Fatal(err)
	}
	clean, chaos := readCSVs(t, cleanDir), readCSVs(t, chaosDir)
	if !reflect.DeepEqual(clean, chaos) {
		t.Errorf("chaos CSVs differ from clean run:\nclean: %v\nchaos: %v", clean, chaos)
	}
}

// TestRunInterruptedThenResumedMatchesReference: a run whose context is
// already cancelled exits with the partial error (exit code 2 in main), and
// a -resume re-run against the same checkpoint directory produces CSVs
// byte-identical to an uninterrupted reference run.
func TestRunInterruptedThenResumedMatchesReference(t *testing.T) {
	args := []string{"-figure", "baselines", "-graphs", "4", "-sizes", "2,4"}
	refDir, resDir := t.TempDir(), t.TempDir()
	ckDir := filepath.Join(t.TempDir(), "ck")
	var buf bytes.Buffer
	if err := run(context.Background(), append(args, "-csv", refDir), &buf); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the interruption arrives before any unit completes
	buf.Reset()
	err := run(ctx, append(args, "-resume", ckDir), &buf)
	if !errors.Is(err, errPartial) {
		t.Fatalf("interrupted run returned %v, want errPartial", err)
	}
	if !strings.Contains(buf.String(), "INCOMPLETE") {
		t.Errorf("interrupted run did not report the incomplete figure:\n%s", buf.String())
	}

	buf.Reset()
	if err := run(context.Background(), append(args, "-resume", ckDir, "-csv", resDir), &buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(readCSVs(t, refDir), readCSVs(t, resDir)) {
		t.Error("resumed CSVs differ from uninterrupted reference")
	}

	// A third run over the fully-journaled checkpoint replays everything.
	buf.Reset()
	if err := run(context.Background(), append(args, "-resume", ckDir), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resume: 4 journaled units found") {
		t.Errorf("replay did not announce the journaled units:\n%s", buf.String())
	}
}

// TestRunResumeMismatchedFlagsFails is the -resume misconfiguration
// regression: a checkpoint recorded under one flag set must refuse a
// resume under another with a clear error, instead of silently keying
// every journal lookup into a miss and recomputing the whole sweep.
func TestRunResumeMismatchedFlagsFails(t *testing.T) {
	ckDir := filepath.Join(t.TempDir(), "ck")
	var buf bytes.Buffer
	if err := run(context.Background(),
		[]string{"-figure", "baselines", "-graphs", "4", "-sizes", "2,4", "-resume", ckDir}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, changed := range [][]string{
		{"-figure", "baselines", "-graphs", "8", "-sizes", "2,4"}, // graphs
		{"-figure", "baselines", "-graphs", "4", "-sizes", "2,8"}, // sizes
		{"-figure", "baselines", "-graphs", "4", "-sizes", "2,4", "-seed", "7"}, // seed
	} {
		buf.Reset()
		err := run(context.Background(), append(changed, "-resume", ckDir), &buf)
		if !errors.Is(err, experiment.ErrJournalMismatch) {
			t.Fatalf("resume with %v: got %v, want ErrJournalMismatch", changed, err)
		}
	}
	// Unchanged flags still resume cleanly.
	buf.Reset()
	if err := run(context.Background(),
		[]string{"-figure", "baselines", "-graphs", "4", "-sizes", "2,4", "-resume", ckDir}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resume: 4 journaled units found") {
		t.Errorf("matching resume did not replay:\n%s", buf.String())
	}
}

// TestRunValidateFlag: the opt-in schedule validation completes on a correct
// pipeline without changing the tables.
func TestRunValidateFlag(t *testing.T) {
	plainDir, checkedDir := t.TempDir(), t.TempDir()
	args := []string{"-figure", "5", "-graphs", "2", "-sizes", "2,4"}
	var buf bytes.Buffer
	if err := run(context.Background(), append(args, "-csv", plainDir), &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(context.Background(), append(args, "-csv", checkedDir, "-validate", "1"), &buf); err != nil {
		t.Fatalf("validated run failed: %v", err)
	}
	if !reflect.DeepEqual(readCSVs(t, plainDir), readCSVs(t, checkedDir)) {
		t.Error("-validate changed the tables")
	}
}

// TestRunBadFaultSpec: a malformed -faults spec is rejected before any work.
func TestRunBadFaultSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-faults", "panic=nope"}, &buf); err == nil {
		t.Fatal("bad -faults spec accepted")
	}
}

// opsGate is the output sink of the live-ops test: it captures run()'s
// output, reports the ops server's address when the banner appears, and
// then blocks run() at its first table print — after the sweep completed
// but while the server is still up — so the test can probe the endpoints
// against a fully populated run regardless of how fast the sweep was.
type opsGate struct {
	buf     bytes.Buffer
	addrCh  chan string
	reached chan struct{} // closed when the gate point is hit
	release chan struct{} // closed by the test to let run() finish
	sent    bool
	gated   bool
}

func (g *opsGate) Write(p []byte) (int, error) {
	g.buf.Write(p)
	if !g.sent {
		if _, rest, ok := strings.Cut(g.buf.String(), "ops server on http://"); ok {
			if addr, _, ok := strings.Cut(rest, " "); ok {
				g.sent = true
				g.addrCh <- addr
			}
		}
	}
	if !g.gated && strings.Contains(g.buf.String(), "=== figure") {
		g.gated = true
		close(g.reached)
		<-g.release
	}
	return len(p), nil
}

func TestRunLiveOpsEndpoint(t *testing.T) {
	g := &opsGate{addrCh: make(chan string, 1), reached: make(chan struct{}), release: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(),
			[]string{"-figure", "2", "-graphs", "3", "-sizes", "2-4", "-http", "127.0.0.1:0"}, g)
	}()
	var addr string
	select {
	case addr = <-g.addrCh:
	case err := <-done:
		t.Fatalf("run exited before announcing the ops server: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("ops server banner never appeared")
	}
	select {
	case <-g.reached:
	case err := <-done:
		t.Fatalf("run exited before printing tables: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("sweep never reached the table print")
	}
	// The sweep is complete and run() is parked on our gate: the server is
	// up and every counter is final.
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body)
	}
	if body := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}
	metricsBody := get("/metrics")
	for _, want := range []string{
		"dlexp_stage_duration_seconds_bucket",
		"dlexp_pool_jobs_total",
		`dlexp_units{state="done"}`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var prog struct {
		UnitsDone  int `json:"unitsDone"`
		UnitsTotal int `json:"unitsTotal"`
	}
	if err := json.Unmarshal([]byte(get("/progress")), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if prog.UnitsTotal == 0 || prog.UnitsDone != prog.UnitsTotal {
		t.Errorf("/progress = %d/%d done, want complete and nonzero", prog.UnitsDone, prog.UnitsTotal)
	}
	close(g.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRunEventsAndTraceFiles(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "run.jsonl")
	trace := filepath.Join(dir, "run.trace.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-figure", "2", "-graphs", "2", "-sizes", "2,4",
		"-events", events, "-trace", trace,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"event log written to", "chrome trace written to"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}

	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	units := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Kind    string `json:"kind"`
			Outcome string `json:"outcome"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event log line not JSON: %v\n%s", err, line)
		}
		if ev.Kind == "unit" && ev.Outcome == "ok" {
			units++
		}
	}
	// Figure 2 runs one table per scenario with 2 graphs each.
	if units == 0 || units%2 != 0 {
		t.Errorf("event log has %d ok unit spans, want a positive multiple of 2", units)
	}

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var chromeEvs []map[string]any
	if err := json.Unmarshal(raw, &chromeEvs); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v", err)
	}
	if len(chromeEvs) == 0 {
		t.Error("chrome trace empty")
	}
}

func TestRunProgressFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-figure", "baselines", "-graphs", "2", "-sizes", "2", "-progress", "1h",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// The interval never fires inside the run; the reporter still prints
	// its final line at shutdown — to stderr, never into table output.
	if strings.Contains(buf.String(), "progress ") {
		t.Error("progress line leaked into table output")
	}
}
