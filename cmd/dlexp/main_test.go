package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"deadlinedist/internal/metrics"
)

func TestParseSizesRange(t *testing.T) {
	got, err := parseSizes("2-5")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 3, 4, 5}) {
		t.Fatalf("parseSizes(2-5) = %v", got)
	}
}

func TestParseSizesList(t *testing.T) {
	got, err := parseSizes("2, 8,16")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 8, 16}) {
		t.Fatalf("parseSizes list = %v", got)
	}
}

func TestParseSizesSingle(t *testing.T) {
	got, err := parseSizes("4")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("parseSizes(4) = %v", got)
	}
}

func TestParseSizesErrors(t *testing.T) {
	for _, bad := range []string{"", "x", "5-2", "0-3", "2,x", "-1"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("MDET CCR=1.5"); got != "MDET_CCR_1_5" {
		t.Fatalf("sanitize = %q", got)
	}
}

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-figure", "5", "-graphs", "3", "-sizes", "2,8"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figure 5", "PURE/CCNE", "ADAPT/CCNE", "LDET", "MDET", "HDET"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWithPlotAndCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-figure", "baselines", "-graphs", "2", "-sizes", "2,4", "-plot", "-csv", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("wrote %d CSV files, want 1", len(files))
	}
	data, err := os.ReadFile(filepath.Join(dir, files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "size,") {
		t.Errorf("CSV malformed: %q", string(data)[:20])
	}
	if !strings.Contains(buf.String(), "|") {
		t.Error("plot not rendered")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-figure", "nope", "-graphs", "2", "-sizes", "2"}, &buf); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sizes", "zzz"}, &buf); err == nil {
		t.Fatal("bad sizes accepted")
	}
}

func TestRunWritesReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.md")
	var buf bytes.Buffer
	err := run([]string{"-figure", "5", "-graphs", "3", "-sizes", "2,8", "-report", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"# Reproduction report", "## Figure 5", "ADAPT/CCNE", "Paired per-graph difference"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunVerifyMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "claims.md")
	var buf bytes.Buffer
	// Tiny batch: the claim machinery must run end to end; statistical
	// verdicts at this scale are not asserted.
	err := run([]string{"-verify", "-graphs", "2", "-report", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "claims reproduced") {
		t.Errorf("verify summary missing:\n%s", out)
	}
	for _, id := range []string{"C1", "C5", "C10"} {
		if !strings.Contains(out, id+" —") {
			t.Errorf("claim %s missing from output", id)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "## Claims:") {
		t.Error("report missing claims section")
	}
}

func TestRunStatsAndBenchJSON(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "BENCH_experiment.json")
	var buf bytes.Buffer
	err := run([]string{"-figure", "2", "-graphs", "2", "-sizes", "2,4",
		"-stats", "-bench-json", "-bench-out", benchPath}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stage", "assign", "schedule", "fingerprint cache", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q", want)
		}
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("bench snapshot not written: %v", err)
	}
	var bench metrics.Bench
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("bench snapshot not valid JSON: %v", err)
	}
	if bench.Name != "experiment" || bench.Graphs == 0 || bench.GraphsPerSec <= 0 {
		t.Errorf("bench snapshot incomplete: %+v", bench)
	}
	if bench.CacheHits+bench.CacheMisses == 0 {
		t.Error("bench snapshot has no cache traffic")
	}
}

func TestRunProfilesAndPprof(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var buf bytes.Buffer
	err := run([]string{"-figure", "2", "-graphs", "2", "-sizes", "2",
		"-cpuprofile", cpu, "-memprofile", mem, "-pprof", "127.0.0.1:0"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", path, err)
		}
	}
	if !strings.Contains(buf.String(), "pprof server on http://127.0.0.1:") {
		t.Errorf("pprof address not announced:\n%s", buf.String())
	}
}
