package main

import (
	"context"
	"runtime"
	"time"

	"deadlinedist/internal/experiment"
	"deadlinedist/internal/metrics"
)

// scalingWorkerCounts are the pool sizes the -bench-scaling section
// measures. On hosts with fewer CPUs the larger pools legitimately degrade
// to the hardware's parallelism; the snapshot's cpus/gomaxprocs fields say
// which regime the numbers were recorded in.
var scalingWorkerCounts = []int{1, 2, 4, 8}

// measureScaling is the workload behind -bench-scaling: the Figure 5 sweep
// re-run under each pool size with a fresh orchestrator and recorder, so
// every point pays the same cache-cold costs and the only variable is
// worker parallelism. Tables are bit-for-bit identical across pool sizes
// (the engine's determinism contract), so the run is pure measurement.
// Graphs counts measure-stage observations, matching Bench.Graphs.
func measureScaling(ctx context.Context, base experiment.Config) ([]metrics.WorkerScalingPoint, error) {
	cfg := base
	// Strip the per-invocation plumbing: the scaling sweep is a standalone
	// measurement, not part of the figure run being snapshotted.
	cfg.Journal = nil
	cfg.Trace = nil
	cfg.Progress = nil
	cfg.Faults = nil
	if cfg.Graphs > 64 {
		cfg.Graphs = 64 // keep the 4-point sweep bounded on big -graphs runs
	}

	points := make([]metrics.WorkerScalingPoint, 0, len(scalingWorkerCounts))
	for _, workers := range scalingWorkerCounts {
		orc := experiment.NewOrchestrator(workers)
		rec := metrics.New()
		cfg.Orchestrator = orc
		cfg.Metrics = rec
		t0 := time.Now()
		_, err := experiment.Figure5(ctx, cfg)
		wall := time.Since(t0)
		orc.Close()
		if err != nil {
			return nil, err
		}
		snap := rec.Snapshot()
		p := metrics.WorkerScalingPoint{
			Workers:        workers,
			WallSeconds:    wall.Seconds(),
			PoolPeak:       snap.PoolPeak,
			Oversubscribed: workers > runtime.NumCPU(),
		}
		for _, st := range snap.Stages {
			if st.Stage == metrics.StageMeasure.String() {
				p.Graphs = st.Count
			}
		}
		if p.WallSeconds > 0 {
			p.GraphsPerSec = float64(p.Graphs) / p.WallSeconds
		}
		points = append(points, p)
	}
	base1 := points[0].GraphsPerSec
	for i := range points {
		if base1 > 0 {
			points[i].Speedup = points[i].GraphsPerSec / base1
			points[i].Efficiency = points[i].Speedup / float64(points[i].Workers)
		}
	}
	return points, nil
}
