// Command dlexp regenerates the experiments of Jonsson & Shin (ICDCS 1997):
// every figure of the paper, the Section 8 complementary sweeps and the
// repository's extension studies.
//
// Usage:
//
//	dlexp -figure 5                 # reproduce Figure 5 (full 128-graph batch)
//	dlexp -figure all -graphs 32    # everything, reduced batch
//	dlexp -figure 2 -plot           # include ASCII charts
//	dlexp -figure 2 -csv out/       # also write CSV files
//	dlexp -verify -report R.md      # machine-check the paper's claims
//	dlexp -stats -bench-json        # per-stage timings + BENCH_experiment.json
//	dlexp -cpuprofile cpu.out -pprof localhost:6060
//	dlexp -figure all -resume ck/   # checkpoint to ck/; re-run resumes there
//	dlexp -validate 7               # spot-check schedules against invariants
//	dlexp -faults panic=0.1,hang=0.1,err=0.1 -unit-timeout 5s   # chaos run
//	dlexp -http localhost:9090      # live ops: /metrics /progress /healthz
//	dlexp -events run.jsonl -trace run.trace.json -progress 2s  # sweep tracing
//
// Figure keys (DESIGN.md §4): 2 3 4 5 (paper figures), ccr met par topo
// shapes apps policy preempt hetero (Section 8), baselines bus locality
// order channels ablate improve olr dispatch (extensions and ablations).
//
// Exit codes: 0 when every requested table completed, 2 when the run was
// interrupted or ran out of budget and some tables carry FAILED cells
// (everything finished is flushed — re-run with the same -resume directory
// to continue), 1 on a fatal error. See DESIGN.md §9.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"deadlinedist/internal/experiment"
	"deadlinedist/internal/generator"
	"deadlinedist/internal/metrics"
	"deadlinedist/internal/obs"
	"deadlinedist/internal/profiling"
	"deadlinedist/internal/report"
)

// errPartial marks a run that drained cleanly after an interruption or a
// budget overrun: some tables carry FAILED cells, everything completed was
// flushed. main maps it to exit code 2.
var errPartial = errors.New("run incomplete")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "dlexp:", err)
	if errors.Is(err, errPartial) {
		os.Exit(2)
	}
	os.Exit(1)
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dlexp", flag.ContinueOnError)
	var (
		figure     = fs.String("figure", "all", "figure key to reproduce, or 'all'")
		graphs     = fs.Int("graphs", 128, "task graphs per configuration (paper: 128)")
		seed       = fs.Uint64("seed", 1997, "workload batch seed")
		sizes      = fs.String("sizes", "2-16", "system sizes: 'lo-hi' or comma-separated list")
		plot       = fs.Bool("plot", false, "render ASCII charts in addition to tables")
		csvDir     = fs.String("csv", "", "directory to write per-table CSV files (optional)")
		verify     = fs.Bool("verify", false, "evaluate the paper's claims against the reproduced tables")
		reportPath = fs.String("report", "", "write a Markdown reproduction report to this file")
		stats      = fs.Bool("stats", false, "print per-stage engine timings and fingerprint-cache traffic")
		benchJSON  = fs.Bool("bench-json", false, "write an engine performance snapshot (see -bench-out)")
		benchOut   = fs.String("bench-out", "BENCH_experiment.json", "path of the -bench-json snapshot")
		benchDelta = fs.Bool("bench-delta", false, "include a measured delta re-slicing section (changed-exec-times workload) in the -bench-json snapshot")
		benchScale = fs.Bool("bench-scaling", false, "include a worker-scaling section (figure 5 sweep at 1/2/4/8 workers) in the -bench-json snapshot")
		crossCap   = fs.Int("cross-cap", 0, "cross-table assignment cache capacity in entries (0 = default 65536)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		mutexProf  = fs.String("mutexprofile", "", "write a mutex-contention profile to this file at exit")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		workers    = fs.Int("workers", 0, "size of the worker pool shared by all figures (default GOMAXPROCS)")
		delta      = fs.Bool("delta", false, "carry memoized critical-path search state across consecutive distributions per worker (bit-identical output)")
		resumeDir  = fs.String("resume", "", "checkpoint directory: journal finished work there and skip it when re-run")
		validate   = fs.Int("validate", 0, "validate a deterministic 1-in-N sample of schedules against the scheduler invariants (0 = off)")
		unitTO     = fs.Duration("unit-timeout", 0, "deadline for one unit of work (one graph through one table's pipeline; 0 = none)")
		budget     = fs.Duration("budget", 0, "wall-clock budget per table; exceeding it yields a partial table (0 = none)")
		retries    = fs.Int("retries", 3, "max attempts per unit on panics, deadline timeouts and transient errors")
		faults     = fs.String("faults", "", "chaos injection: 'panic=P,hang=P,err=P[,seed=N][,hangms=D]' (testing only)")
		httpAddr   = fs.String("http", "", "serve the live ops endpoint on this address: /metrics (Prometheus), /progress (JSON), /healthz, /debug/pprof/")
		eventsPath = fs.String("events", "", "write a JSONL event log (one span per unit attempt and pipeline stage) to this file")
		tracePath  = fs.String("trace", "", "write a Chrome trace-event JSON timeline to this file (open in Perfetto or chrome://tracing)")
		progEvery  = fs.Duration("progress", 0, "print a progress line to stderr at this interval (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	prof, err := profiling.Start(profiling.Options{
		CPUProfile: *cpuProfile, MemProfile: *memProfile, PprofAddr: *pprofAddr,
		MutexProfile: *mutexProf,
	})
	if err != nil {
		return err
	}
	defer prof.Stop()
	if addr := prof.Addr(); addr != "" {
		fmt.Fprintf(out, "pprof server on http://%s/debug/pprof/\n", addr)
	}

	sweep, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	base := experiment.Default(generator.MDET)
	base.Graphs = *graphs
	base.Seed = *seed
	base.Sizes = sweep
	base.UnitTimeout = *unitTO
	base.Budget = *budget
	base.Retry = experiment.RetryPolicy{MaxAttempts: *retries}
	base.ValidateSample = *validate
	base.DeltaReuse = *delta
	if *faults != "" {
		plan, err := parseFaults(*faults)
		if err != nil {
			return err
		}
		base.Faults = plan
	}
	if *resumeDir != "" {
		jr, err := experiment.OpenJournal(*resumeDir)
		if err != nil {
			return err
		}
		defer jr.Close()
		// Bind the journal to the flag identity that determines its record
		// keys: resuming under different flags would miss on every lookup
		// and silently recompute the whole sweep, so fail loudly instead.
		meta := fmt.Sprintf("figure=%s|graphs=%d|seed=%d|sizes=%v", *figure, *graphs, *seed, sweep)
		if err := jr.BindMeta(meta); err != nil {
			return fmt.Errorf("resume %s: %w", *resumeDir, err)
		}
		base.Journal = jr
		if n := jr.Len(); n > 0 {
			fmt.Fprintf(out, "resume: %d journaled units found in %s\n", n, *resumeDir)
		}
	}

	// One orchestrator for the whole invocation: every figure's tables
	// share its worker pool, batch cache and cross-table assignment cache.
	orc := experiment.NewOrchestrator(*workers)
	defer orc.Close()
	base.Orchestrator = orc
	if *crossCap > 0 {
		base.CrossCacheCap = *crossCap
		orc.SetCrossCacheCap(*crossCap)
	}

	// The ops endpoint and the progress line are fed by the same recorder
	// as -stats, so asking for either turns recording on.
	var rec *metrics.Recorder
	if *stats || *benchJSON || *httpAddr != "" || *progEvery > 0 {
		rec = metrics.New()
		base.Metrics = rec
	}
	var prog *obs.Progress
	if *httpAddr != "" || *progEvery > 0 {
		prog = obs.NewProgress()
		base.Progress = prog
	}
	var tr *obs.Tracer
	if *eventsPath != "" || *tracePath != "" {
		if tr, err = obs.NewFiles(*eventsPath, *tracePath); err != nil {
			return err
		}
		base.Trace = tr
	}
	if *httpAddr != "" {
		// The pool (orchestrator) is already running here, so the server is
		// born ready; a SIGINT flips /readyz to draining while /healthz
		// stays green through the graceful drain.
		ready := obs.NewReadiness()
		ready.SetStarted(true)
		go func() {
			<-ctx.Done()
			ready.SetDraining(true)
		}()
		srv, err := obs.ServeReady(*httpAddr, rec, prog, ready)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "ops server on http://%s (/metrics /progress /healthz /readyz)\n", srv.Addr())
	}
	reporter := obs.StartReporter(os.Stderr, *progEvery, prog, rec)
	finish := func(wall time.Duration) error {
		reporter.Stop()
		if tr != nil {
			if err := tr.Close(); err != nil {
				return fmt.Errorf("event trace: %w", err)
			}
			if *eventsPath != "" {
				fmt.Fprintf(out, "event log written to %s\n", *eventsPath)
			}
			if *tracePath != "" {
				fmt.Fprintf(out, "chrome trace written to %s\n", *tracePath)
			}
		}
		if rec == nil {
			return prof.Stop()
		}
		snap := rec.Snapshot()
		if *stats {
			fmt.Fprintf(out, "\n%s\n", snap.String())
		}
		if *benchJSON {
			bench := metrics.NewBench("experiment", snap, wall)
			if *benchDelta {
				if bench.Delta, err = measureDelta(2000); err != nil {
					return err
				}
			}
			if *benchScale {
				if bench.WorkerScaling, err = measureScaling(ctx, base); err != nil {
					return err
				}
			}
			f, err := os.Create(*benchOut)
			if err != nil {
				return err
			}
			if err := bench.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "benchmark snapshot written to %s\n", *benchOut)
		}
		return prof.Stop()
	}

	if *verify {
		start := time.Now()
		if err := runVerify(ctx, base, out, *reportPath); err != nil {
			return err
		}
		return finish(time.Since(start))
	}

	keys := experiment.FigureOrder()
	if *figure != "all" {
		keys = strings.Split(*figure, ",")
	}
	registry := experiment.Figures()

	for _, key := range keys {
		if _, ok := registry[key]; !ok {
			return fmt.Errorf("unknown figure %q (known: %s)", key, strings.Join(experiment.FigureOrder(), " "))
		}
	}

	// Run every figure concurrently over the shared pool — figure N+1's
	// graphs start while figure N's stragglers finish — then print in the
	// deterministic key order, so output bytes match a sequential run.
	type figOut struct {
		tables  []*experiment.Table
		err     error
		elapsed time.Duration
	}
	outs := make([]figOut, len(keys))
	var figWG sync.WaitGroup
	runStart := time.Now()
	for i, key := range keys {
		figWG.Add(1)
		go func(i int, fn experiment.FigureFunc) {
			defer figWG.Done()
			start := time.Now()
			tables, err := fn(ctx, base)
			outs[i] = figOut{tables: tables, err: err, elapsed: time.Since(start)}
		}(i, registry[key])
	}
	figWG.Wait()

	allTables := make(map[string][]*experiment.Table, len(keys))
	var partialKeys []string
	for ki, key := range keys {
		tables := outs[ki].tables
		if err := outs[ki].err; err != nil {
			var pe *experiment.PartialError
			if !errors.As(err, &pe) && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("figure %s: %w", key, err)
			}
			// Interrupted or out of budget: print what completed (partial
			// tables carry FAILED cells), keep draining the other figures,
			// and report exit code 2 at the end.
			partialKeys = append(partialKeys, key)
			fmt.Fprintf(out, "=== figure %s: INCOMPLETE (%v) ===\n\n", key, err)
		} else {
			fmt.Fprintf(out, "=== figure %s (%d graphs/point, %v) ===\n\n", key, *graphs, outs[ki].elapsed.Round(time.Millisecond))
		}
		allTables[key] = tables
		for i, t := range tables {
			fmt.Fprintln(out, t.String())
			if *plot {
				fmt.Fprintln(out, t.Plot(60, 14))
			}
			if *csvDir != "" {
				name := fmt.Sprintf("figure_%s_%d_%s.csv", key, i, sanitize(t.Scenario))
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					return err
				}
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(t.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
	}
	if *reportPath != "" {
		if err := writeReport(*reportPath, base, keys, allTables, nil, time.Since(runStart)); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *reportPath)
	}
	if err := finish(time.Since(runStart)); err != nil {
		return err
	}
	if len(partialKeys) > 0 {
		return fmt.Errorf("%w: figures %s carry FAILED cells (re-run with -resume to continue)",
			errPartial, strings.Join(partialKeys, ", "))
	}
	return nil
}

func runVerify(ctx context.Context, base experiment.Config, out io.Writer, reportPath string) error {
	start := time.Now()
	results, err := experiment.VerifyClaims(ctx, base)
	if err != nil {
		return err
	}
	if reportPath != "" {
		if err := writeReport(reportPath, base, nil, nil, results, time.Since(start)); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n\n", reportPath)
	}
	passed := 0
	for _, r := range results {
		status := "FAIL"
		if r.Passed {
			status = "PASS"
			passed++
		}
		fmt.Fprintf(out, "[%s] %s — %s\n", status, r.Claim.ID, r.Claim.Statement)
		fmt.Fprintf(out, "       source: %s\n", r.Claim.Source)
		fmt.Fprintf(out, "       detail: %s\n\n", r.Detail)
	}
	fmt.Fprintf(out, "%d/%d claims reproduced (%d graphs/point, %v)\n",
		passed, len(results), base.Graphs, time.Since(start).Round(time.Millisecond))
	return nil
}

func writeReport(path string, base experiment.Config, keys []string,
	tables map[string][]*experiment.Table, claims []experiment.ClaimResult, elapsed time.Duration) error {

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	opts := report.Options{
		Title:   "Reproduction report: Jonsson & Shin, ICDCS 1997",
		Graphs:  base.Graphs,
		Seed:    base.Seed,
		Elapsed: elapsed,
		PairedPairs: [][2]string{
			{"ADAPT/CCNE", "PURE/CCNE"},
			{"THRES/CCNE", "PURE/CCNE"},
		},
	}
	if err := report.Write(f, opts, keys, tables, claims); err != nil {
		return err
	}
	return f.Close()
}

// parseFaults parses the -faults chaos spec; the dialect (panic/hang/err
// rates, seed, hangms, maxfaulty) is owned by experiment.ParseFaults and
// shared with dlserve.
func parseFaults(spec string) (*experiment.FaultPlan, error) {
	return experiment.ParseFaults(spec)
}

func parseSizes(s string) ([]int, error) {
	if lo, hi, ok := strings.Cut(s, "-"); ok && !strings.Contains(s, ",") {
		a, err1 := strconv.Atoi(strings.TrimSpace(lo))
		b, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || a < 1 || b < a {
			return nil, fmt.Errorf("bad size range %q", s)
		}
		out := make([]int, 0, b-a+1)
		for n := a; n <= b; n++ {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}
