// Command dlexp regenerates the experiments of Jonsson & Shin (ICDCS 1997):
// every figure of the paper, the Section 8 complementary sweeps and the
// repository's extension studies.
//
// Usage:
//
//	dlexp -figure 5                 # reproduce Figure 5 (full 128-graph batch)
//	dlexp -figure all -graphs 32    # everything, reduced batch
//	dlexp -figure 2 -plot           # include ASCII charts
//	dlexp -figure 2 -csv out/       # also write CSV files
//	dlexp -verify -report R.md      # machine-check the paper's claims
//	dlexp -stats -bench-json        # per-stage timings + BENCH_experiment.json
//	dlexp -cpuprofile cpu.out -pprof localhost:6060
//
// Figure keys (DESIGN.md §4): 2 3 4 5 (paper figures), ccr met par topo
// shapes apps policy preempt hetero (Section 8), baselines bus locality
// order channels ablate improve olr dispatch (extensions and ablations).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"deadlinedist/internal/experiment"
	"deadlinedist/internal/generator"
	"deadlinedist/internal/metrics"
	"deadlinedist/internal/profiling"
	"deadlinedist/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dlexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dlexp", flag.ContinueOnError)
	var (
		figure     = fs.String("figure", "all", "figure key to reproduce, or 'all'")
		graphs     = fs.Int("graphs", 128, "task graphs per configuration (paper: 128)")
		seed       = fs.Uint64("seed", 1997, "workload batch seed")
		sizes      = fs.String("sizes", "2-16", "system sizes: 'lo-hi' or comma-separated list")
		plot       = fs.Bool("plot", false, "render ASCII charts in addition to tables")
		csvDir     = fs.String("csv", "", "directory to write per-table CSV files (optional)")
		verify     = fs.Bool("verify", false, "evaluate the paper's claims against the reproduced tables")
		reportPath = fs.String("report", "", "write a Markdown reproduction report to this file")
		stats      = fs.Bool("stats", false, "print per-stage engine timings and fingerprint-cache traffic")
		benchJSON  = fs.Bool("bench-json", false, "write an engine performance snapshot (see -bench-out)")
		benchOut   = fs.String("bench-out", "BENCH_experiment.json", "path of the -bench-json snapshot")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		workers    = fs.Int("workers", 0, "size of the worker pool shared by all figures (default GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	prof, err := profiling.Start(profiling.Options{
		CPUProfile: *cpuProfile, MemProfile: *memProfile, PprofAddr: *pprofAddr,
	})
	if err != nil {
		return err
	}
	defer prof.Stop()
	if addr := prof.Addr(); addr != "" {
		fmt.Fprintf(out, "pprof server on http://%s/debug/pprof/\n", addr)
	}

	sweep, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	base := experiment.Default(generator.MDET)
	base.Graphs = *graphs
	base.Seed = *seed
	base.Sizes = sweep

	// One orchestrator for the whole invocation: every figure's tables
	// share its worker pool, batch cache and cross-table assignment cache.
	orc := experiment.NewOrchestrator(*workers)
	defer orc.Close()
	base.Orchestrator = orc

	var rec *metrics.Recorder
	if *stats || *benchJSON {
		rec = metrics.New()
		base.Metrics = rec
	}
	finish := func(wall time.Duration) error {
		if rec == nil {
			return prof.Stop()
		}
		snap := rec.Snapshot()
		if *stats {
			fmt.Fprintf(out, "\n%s\n", snap.String())
		}
		if *benchJSON {
			f, err := os.Create(*benchOut)
			if err != nil {
				return err
			}
			if err := metrics.NewBench("experiment", snap, wall).WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "benchmark snapshot written to %s\n", *benchOut)
		}
		return prof.Stop()
	}

	if *verify {
		start := time.Now()
		if err := runVerify(base, out, *reportPath); err != nil {
			return err
		}
		return finish(time.Since(start))
	}

	keys := experiment.FigureOrder()
	if *figure != "all" {
		keys = strings.Split(*figure, ",")
	}
	registry := experiment.Figures()

	for _, key := range keys {
		if _, ok := registry[key]; !ok {
			return fmt.Errorf("unknown figure %q (known: %s)", key, strings.Join(experiment.FigureOrder(), " "))
		}
	}

	// Run every figure concurrently over the shared pool — figure N+1's
	// graphs start while figure N's stragglers finish — then print in the
	// deterministic key order, so output bytes match a sequential run.
	type figOut struct {
		tables  []*experiment.Table
		err     error
		elapsed time.Duration
	}
	outs := make([]figOut, len(keys))
	var figWG sync.WaitGroup
	runStart := time.Now()
	for i, key := range keys {
		figWG.Add(1)
		go func(i int, fn func(experiment.Config) ([]*experiment.Table, error)) {
			defer figWG.Done()
			start := time.Now()
			tables, err := fn(base)
			outs[i] = figOut{tables: tables, err: err, elapsed: time.Since(start)}
		}(i, registry[key])
	}
	figWG.Wait()

	allTables := make(map[string][]*experiment.Table, len(keys))
	for ki, key := range keys {
		if outs[ki].err != nil {
			return fmt.Errorf("figure %s: %w", key, outs[ki].err)
		}
		tables := outs[ki].tables
		allTables[key] = tables
		fmt.Fprintf(out, "=== figure %s (%d graphs/point, %v) ===\n\n", key, *graphs, outs[ki].elapsed.Round(time.Millisecond))
		for i, t := range tables {
			fmt.Fprintln(out, t.String())
			if *plot {
				fmt.Fprintln(out, t.Plot(60, 14))
			}
			if *csvDir != "" {
				name := fmt.Sprintf("figure_%s_%d_%s.csv", key, i, sanitize(t.Scenario))
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					return err
				}
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(t.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
	}
	if *reportPath != "" {
		if err := writeReport(*reportPath, base, keys, allTables, nil, time.Since(runStart)); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *reportPath)
	}
	return finish(time.Since(runStart))
}

func runVerify(base experiment.Config, out io.Writer, reportPath string) error {
	start := time.Now()
	results, err := experiment.VerifyClaims(base)
	if err != nil {
		return err
	}
	if reportPath != "" {
		if err := writeReport(reportPath, base, nil, nil, results, time.Since(start)); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n\n", reportPath)
	}
	passed := 0
	for _, r := range results {
		status := "FAIL"
		if r.Passed {
			status = "PASS"
			passed++
		}
		fmt.Fprintf(out, "[%s] %s — %s\n", status, r.Claim.ID, r.Claim.Statement)
		fmt.Fprintf(out, "       source: %s\n", r.Claim.Source)
		fmt.Fprintf(out, "       detail: %s\n\n", r.Detail)
	}
	fmt.Fprintf(out, "%d/%d claims reproduced (%d graphs/point, %v)\n",
		passed, len(results), base.Graphs, time.Since(start).Round(time.Millisecond))
	return nil
}

func writeReport(path string, base experiment.Config, keys []string,
	tables map[string][]*experiment.Table, claims []experiment.ClaimResult, elapsed time.Duration) error {

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	opts := report.Options{
		Title:   "Reproduction report: Jonsson & Shin, ICDCS 1997",
		Graphs:  base.Graphs,
		Seed:    base.Seed,
		Elapsed: elapsed,
		PairedPairs: [][2]string{
			{"ADAPT/CCNE", "PURE/CCNE"},
			{"THRES/CCNE", "PURE/CCNE"},
		},
	}
	if err := report.Write(f, opts, keys, tables, claims); err != nil {
		return err
	}
	return f.Close()
}

func parseSizes(s string) ([]int, error) {
	if lo, hi, ok := strings.Cut(s, "-"); ok && !strings.Contains(s, ",") {
		a, err1 := strconv.Atoi(strings.TrimSpace(lo))
		b, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || a < 1 || b < a {
			return nil, fmt.Errorf("bad size range %q", s)
		}
		out := make([]int, 0, b-a+1)
		for n := a; n <= b; n++ {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}
