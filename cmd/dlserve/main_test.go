package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer for run's banner output.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRe = regexp.MustCompile(`dlserve on http://(\S+)`)

// startRun boots run() on a loopback port and returns the bound address
// plus a cancel-and-wait shutdown function returning run's error.
func startRun(t *testing.T, args []string, out *syncBuffer) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			return m[1], func() error {
				cancel()
				select {
				case err := <-done:
					return err
				case <-time.After(10 * time.Second):
					t.Fatal("run did not return after cancel")
					return nil
				}
			}
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("no listen banner in %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunServeDrain: the daemon serves a request, then a SIGTERM-style
// context cancellation drains it cleanly (exit 0 path).
func TestRunServeDrain(t *testing.T) {
	var out syncBuffer
	addr, shutdown := startRun(t, []string{"-faults", "err=0.3,seed=5", "-retries", "4"}, &out)

	body := `{"graph": {"subtasks": [{"name":"a","cost":2},{"name":"b","cost":3,"endToEnd":20}],
		"arcs": [{"from":"a","to":"b","size":1}]}, "procs": 4, "assigner": "ADAPT", "budgetMs": 500}`
	resp, err := http.Post("http://"+addr+"/v1/assign", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assign: %d %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), `"schedulable":true`) {
		t.Errorf("no verdict in %s", b)
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		r, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s: %d", path, r.StatusCode)
		}
	}
	http.DefaultClient.CloseIdleConnections()

	if err := shutdown(); err != nil {
		t.Fatalf("drain error: %v", err)
	}
	got := out.String()
	for _, want := range []string{"chaos mode: err=0.3,seed=5", "drain: stopped accepting", "drain: complete"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunBadFlags: flag and fault-spec errors surface as non-nil (exit 1).
func TestRunBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-faults", "bogus"}, &out); err == nil {
		t.Error("malformed fault spec accepted")
	}
}

// TestRunObservabilityFlags: -slo reshapes the classes served on /slo,
// -access-log and -trace create their files, the banner lists /slo, and a
// classed request lands in the right class with its request id echoed.
func TestRunObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	accessPath := filepath.Join(dir, "access.jsonl")
	tracePath := filepath.Join(dir, "trace.json")
	eventsPath := filepath.Join(dir, "events.jsonl")
	var out syncBuffer
	addr, shutdown := startRun(t, []string{
		"-slo", "interactive=250ms/0.999",
		"-access-log", accessPath,
		"-trace", tracePath,
		"-events", eventsPath,
	}, &out)

	if !strings.Contains(out.String(), "/slo") {
		t.Errorf("banner does not list /slo: %q", out.String())
	}

	body := `{"graph": {"subtasks": [{"name":"a","cost":2},{"name":"b","cost":3,"endToEnd":20}],
		"arcs": [{"from":"a","to":"b","size":1}]}, "procs": 4, "class": "interactive", "budgetMs": 500}`
	req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/assign", strings.NewReader(body))
	req.Header.Set("X-Request-Id", "flag-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assign: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "flag-test-1" {
		t.Errorf("request id not echoed: %q", got)
	}

	r, err := http.Get("http://" + addr + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	sloBody, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var doc struct {
		Classes []struct {
			Class     string `json:"class"`
			Objective string `json:"objective"`
			Served    int64  `json:"served"`
		} `json:"classes"`
	}
	if err := json.Unmarshal(sloBody, &doc); err != nil {
		t.Fatalf("/slo is not JSON: %v in %s", err, sloBody)
	}
	found := false
	for _, c := range doc.Classes {
		if c.Class == "interactive" {
			found = true
			if c.Objective != "250ms" {
				t.Errorf("-slo did not reshape the objective: %q", c.Objective)
			}
			if c.Served != 1 {
				t.Errorf("classed request not counted: served=%d", c.Served)
			}
		}
	}
	if !found {
		t.Fatalf("no interactive class on /slo: %s", sloBody)
	}
	http.DefaultClient.CloseIdleConnections()

	if err := shutdown(); err != nil {
		t.Fatalf("drain error: %v", err)
	}

	access, err := os.ReadFile(accessPath)
	if err != nil || !bytes.Contains(access, []byte(`"req":"flag-test-1"`)) {
		t.Errorf("access log missing the request (%v): %s", err, access)
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil || !bytes.HasPrefix(trace, []byte("[")) {
		t.Errorf("trace file is not a Chrome trace (%v): %.40s", err, trace)
	}
	events, err := os.ReadFile(eventsPath)
	if err != nil || !bytes.Contains(events, []byte(`"kind":"request"`)) {
		t.Errorf("events file has no request span (%v)", err)
	}
}

// TestRunBadObsFlags: malformed -slo specs and uncreatable sink paths
// surface as startup errors, not silently-ignored flags.
func TestRunBadObsFlags(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-slo", "interactive=bogus"}, &out); err == nil {
		t.Error("malformed -slo spec accepted")
	}
	if err := run(context.Background(), []string{"-slo", "gold=1s"}, &out); err == nil {
		t.Error("unknown -slo class accepted")
	}
	if err := run(context.Background(), []string{"-access-log", "/no/such/dir/x.log"}, &out); err == nil {
		t.Error("uncreatable access-log path accepted")
	}
}
