package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer for run's banner output.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRe = regexp.MustCompile(`dlserve on http://(\S+)`)

// startRun boots run() on a loopback port and returns the bound address
// plus a cancel-and-wait shutdown function returning run's error.
func startRun(t *testing.T, args []string, out *syncBuffer) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			return m[1], func() error {
				cancel()
				select {
				case err := <-done:
					return err
				case <-time.After(10 * time.Second):
					t.Fatal("run did not return after cancel")
					return nil
				}
			}
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("no listen banner in %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunServeDrain: the daemon serves a request, then a SIGTERM-style
// context cancellation drains it cleanly (exit 0 path).
func TestRunServeDrain(t *testing.T) {
	var out syncBuffer
	addr, shutdown := startRun(t, []string{"-faults", "err=0.3,seed=5", "-retries", "4"}, &out)

	body := `{"graph": {"subtasks": [{"name":"a","cost":2},{"name":"b","cost":3,"endToEnd":20}],
		"arcs": [{"from":"a","to":"b","size":1}]}, "procs": 4, "assigner": "ADAPT", "budgetMs": 500}`
	resp, err := http.Post("http://"+addr+"/v1/assign", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assign: %d %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), `"schedulable":true`) {
		t.Errorf("no verdict in %s", b)
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		r, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s: %d", path, r.StatusCode)
		}
	}
	http.DefaultClient.CloseIdleConnections()

	if err := shutdown(); err != nil {
		t.Fatalf("drain error: %v", err)
	}
	got := out.String()
	for _, want := range []string{"chaos mode: err=0.3,seed=5", "drain: stopped accepting", "drain: complete"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunBadFlags: flag and fault-spec errors surface as non-nil (exit 1).
func TestRunBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-faults", "bogus"}, &out); err == nil {
		t.Error("malformed fault spec accepted")
	}
}
