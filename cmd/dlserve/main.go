// Command dlserve runs deadline assignment as a long-lived network
// service: an HTTP/JSON daemon accepting task graphs and returning
// deadline distributions with schedulability verdicts, engineered for the
// failure path first (DESIGN.md §11).
//
// Usage:
//
//	dlserve -addr :8080                          # serve
//	dlserve -addr :8080 -rate 50 -burst 100      # per-tenant quotas
//	dlserve -addr :8080 -max-budget-ms 5000      # clamp client budgets
//	dlserve -addr :8080 -faults err=0.2,seed=7   # chaos mode (tests/CI)
//	dlserve -slo interactive=250ms/0.999         # tighten a class contract
//	dlserve -events ev.jsonl -trace tr.json -access-log -   # full tracing
//
// One request:
//
//	curl -s localhost:8080/v1/assign -d '{
//	  "graph": {"subtasks": [{"name":"a","cost":2},
//	                         {"name":"b","cost":3,"endToEnd":20}],
//	            "arcs": [{"from":"a","to":"b","size":1}]},
//	  "procs": 4, "assigner": "ADAPT", "budgetMs": 500}'
//
// Every request carries a computation budget (budgetMs field or
// X-Budget-Ms header) that is enforced as a context deadline through the
// whole pipeline, and a latency class ("class" field or X-Latency-Class
// header: interactive, standard or batch) that selects the latency
// objective it is scored against on /slo and clamps its budget.
// Responses are content-addressed, so retries are free and bit-identical,
// and every response echoes X-Request-Id (client-supplied or minted).
// Non-2xx responses carry exactly one taxonomy error: invalid (400),
// overload (429 + Retry-After), transient (503), internal (500). SIGTERM
// drains gracefully: /readyz flips to 503, in-flight requests finish
// within their budgets, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"deadlinedist/internal/experiment"
	"deadlinedist/internal/metrics"
	"deadlinedist/internal/obs"
	"deadlinedist/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlserve:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body: it serves until ctx is cancelled
// (SIGTERM/SIGINT), then drains and returns the drain's verdict.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dlserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "localhost:8080", "listen address")
		workers    = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		inflight   = fs.Int("inflight", 0, "max concurrent requests past admission (0 = pool size)")
		queue      = fs.Int("queue", 0, "max requests waiting for a slot (0 = 4x inflight)")
		rate       = fs.Float64("rate", 0, "per-tenant sustained requests/sec (0 = no quotas)")
		burst      = fs.Float64("burst", 0, "per-tenant burst (0 = max(1, rate))")
		defBudget  = fs.Int("default-budget-ms", 2000, "computation budget of requests that carry none")
		maxBudget  = fs.Int("max-budget-ms", 10000, "upper clamp on client budgets")
		unitTO     = fs.Duration("unit-timeout", 0, "per-attempt watchdog (0 = default budget)")
		retries    = fs.Int("retries", 3, "attempts per request unit (1 disables retries)")
		cacheSize  = fs.Int("cache", 4096, "response-cache capacity (bodies)")
		drainSlack = fs.Duration("drain-slack", 500*time.Millisecond, "drain deadline past the longest request budget")
		faultSpec  = fs.String("faults", "", "chaos spec key=value,... (panic/hang/err rates, seed, hangms, maxfaulty)")
		eventsPath = fs.String("events", "", "write a JSONL event log (request spans and their stage child spans) to this file")
		tracePath  = fs.String("trace", "", "write a Chrome trace (chrome://tracing, ui.perfetto.dev) to this file")
		accessPath = fs.String("access-log", "", "write the structured access log (one JSON line per request) to this file; \"-\" = stdout")
		sloSpec    = fs.String("slo", "", "SLO spec key=value,... (class=objective[/target[/maxbudget]] for interactive/standard/batch, fast=, slow=, warn=, page=, min=, default=)")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := serve.Config{
		Admission: serve.AdmissionConfig{
			MaxInflight: *inflight,
			MaxQueue:    *queue,
			TenantRate:  *rate,
			TenantBurst: *burst,
		},
		Workers:       *workers,
		DefaultBudget: time.Duration(*defBudget) * time.Millisecond,
		MaxBudget:     time.Duration(*maxBudget) * time.Millisecond,
		UnitTimeout:   *unitTO,
		Retry:         experiment.RetryPolicy{MaxAttempts: *retries},
		CacheEntries:  *cacheSize,
		DrainSlack:    *drainSlack,
		Metrics:       metrics.New(),
	}
	if *faultSpec != "" {
		plan, err := experiment.ParseFaults(*faultSpec)
		if err != nil {
			return err
		}
		cfg.Faults = plan
		fmt.Fprintf(out, "chaos mode: %s\n", *faultSpec)
	}
	if *sloSpec != "" {
		slo, err := serve.ParseSLO(*sloSpec)
		if err != nil {
			return err
		}
		cfg.SLO = slo
	}
	if *eventsPath != "" || *tracePath != "" {
		tr, err := obs.NewFiles(*eventsPath, *tracePath)
		if err != nil {
			return err
		}
		defer tr.Close()
		cfg.Trace = tr
	}
	if *accessPath != "" {
		if *accessPath == "-" {
			cfg.AccessLog = out
		} else {
			f, err := os.Create(*accessPath)
			if err != nil {
				return err
			}
			defer f.Close()
			cfg.AccessLog = f
		}
	}

	s := serve.New(cfg)
	if err := s.Start(*addr); err != nil {
		return err
	}
	fmt.Fprintf(out, "dlserve on http://%s (/v1/assign /metrics /slo /healthz /readyz)\n", s.Addr())

	<-ctx.Done()
	fmt.Fprintln(out, "drain: stopped accepting, finishing in-flight requests")
	// The signal context is already cancelled; drain under a fresh one so
	// in-flight requests get their full budgets before the hard bound.
	if err := s.Drain(context.Background()); err != nil {
		return err
	}
	fmt.Fprintln(out, "drain: complete")
	return nil
}
